/**
 * @file
 * Tests for the observability layer: deterministic JSON emission,
 * ledger sections/tables and their JSON/CSV exports, the subsystem
 * builders, and the conservation audits (clean results pass, cooked
 * books are caught with a `source:metric expected-vs-got` line).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "dnn/networks.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/sim.hh"
#include "obs/audit.hh"
#include "obs/json_reader.hh"
#include "obs/json_writer.hh"
#include "obs/ledger.hh"
#include "serving/simulator.hh"

namespace supernpu {
namespace obs {
namespace {

// --- JSON writer ------------------------------------------------------

TEST(JsonWriter, EscapesControlAndSpecialCharacters)
{
    EXPECT_EQ(jsonEscaped("plain"), "plain");
    EXPECT_EQ(jsonEscaped("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscaped("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscaped("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscaped(std::string("x\x01y")), "x\\u0001y");
}

TEST(JsonWriter, NumbersRoundTripExactly)
{
    for (double v : {0.0, 1.0, -2.5, 1.0 / 3.0, 52.6e9, 1e-300}) {
        const std::string text = jsonNumber(v);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
    }
}

TEST(JsonWriter, BuildsNestedDocumentInOrder)
{
    JsonWriter writer;
    writer.beginObject()
        .key("a")
        .value((std::uint64_t)1)
        .key("b")
        .beginArray()
        .value(2.5)
        .value("three")
        .value(true)
        .endArray()
        .endObject();
    const std::string doc = writer.str();
    // Keys in insertion order, values rendered deterministically.
    EXPECT_LT(doc.find("\"a\""), doc.find("\"b\""));
    EXPECT_NE(doc.find("2.5"), std::string::npos);
    EXPECT_NE(doc.find("\"three\""), std::string::npos);
    EXPECT_NE(doc.find("true"), std::string::npos);
}

TEST(JsonWriterDeath, NonFiniteNumberHasNoJsonRepresentation)
{
    // `%.17g` renders NaN as `nan` and infinity as `inf` — neither
    // is JSON, so every strict reader downstream choked on the
    // ledger. Dying at the write names the bug at its source.
    EXPECT_DEATH(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
                 "no JSON representation");
    EXPECT_DEATH(jsonNumber(std::numeric_limits<double>::infinity()),
                 "no JSON representation");
}

TEST(JsonWriterDeath, NonFiniteValueNamesItsKeyPath)
{
    JsonWriter json;
    json.beginObject();
    json.key("sections").beginObject();
    json.key("sim").beginObject();
    json.key("totalSec").value(1.0);
    EXPECT_DEATH(
        json.key("throughput")
            .value(std::numeric_limits<double>::quiet_NaN()),
        "sections\\.sim\\.throughput");
}

TEST(JsonWriterDeath, NonFiniteArrayElementNamesItsIndex)
{
    JsonWriter json;
    json.beginObject();
    json.key("samples").beginArray();
    json.value(1.0);
    json.value(2.0);
    EXPECT_DEATH(
        json.value(std::numeric_limits<double>::infinity()),
        "samples\\[2\\]");
}

TEST(JsonWriter, FiniteValuesStillParseAfterPathTracking)
{
    // The breadcrumb bookkeeping exists only for error paths; a
    // document of finite values must still be strict JSON. (The
    // bench baseline's byte-equality gate pins the exact bytes.)
    JsonWriter json;
    json.beginObject();
    json.key("a").beginArray();
    json.value(1.0).value(2.0);
    json.endArray();
    json.key("b").beginObject();
    json.key("c").value(3.0);
    json.endObject();
    json.endObject();
    std::string error;
    const auto doc = parseJson(json.str(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const JsonValue *list = doc->find("a");
    ASSERT_TRUE(list && list->isArray());
    EXPECT_EQ(list->array.size(), 2u);
}

TEST(JsonWriter, IdenticalInputsGiveIdenticalBytes)
{
    const auto build = [] {
        JsonWriter writer;
        writer.beginObject()
            .key("x")
            .value(1.0 / 7.0)
            .key("y")
            .value((std::uint64_t)42)
            .endObject();
        return writer.str();
    };
    EXPECT_EQ(build(), build());
}

// --- Value ------------------------------------------------------------

TEST(LedgerValue, KindsAndNumericView)
{
    const Value i = Value::integer(7);
    const Value r = Value::real(2.5);
    const Value t = Value::text("label");
    EXPECT_EQ(i.kind(), Value::Kind::Int);
    EXPECT_EQ(i.asInt(), 7ull);
    EXPECT_DOUBLE_EQ(i.number(), 7.0);
    EXPECT_DOUBLE_EQ(r.number(), 2.5);
    EXPECT_DOUBLE_EQ(t.number(), 0.0);
    EXPECT_EQ(t.asText(), "label");
}

TEST(LedgerValue, CsvTextNeutralizesDelimiters)
{
    EXPECT_EQ(Value::text("a,b\nc").csvText(), "a;b;c");
    EXPECT_EQ(Value::integer(9).csvText(), "9");
}

// --- RunLedger --------------------------------------------------------

TEST(RunLedger, CountersAreOrderedAndFindable)
{
    RunLedger ledger;
    ledger.setInt("run", "cycles", 100);
    ledger.setReal("run", "seconds", 0.5);
    ledger.setText("run", "network", "AlexNet");
    ledger.incInt("run", "cycles", 11);
    ledger.incInt("run", "retries", 3); // created at delta

    const Value *cycles = ledger.find("run", "cycles");
    ASSERT_NE(cycles, nullptr);
    EXPECT_EQ(cycles->asInt(), 111ull);
    const Value *retries = ledger.find("run", "retries");
    ASSERT_NE(retries, nullptr);
    EXPECT_EQ(retries->asInt(), 3ull);
    EXPECT_EQ(ledger.find("run", "missing"), nullptr);
    EXPECT_EQ(ledger.find("nope", "cycles"), nullptr);

    // Insertion order is preserved in the export.
    const std::string json = ledger.json();
    EXPECT_LT(json.find("\"cycles\""), json.find("\"seconds\""));
    EXPECT_LT(json.find("\"seconds\""), json.find("\"network\""));
    EXPECT_NE(json.find(kLedgerSchema), std::string::npos);
}

TEST(RunLedger, TablesKeepColumnsAndRows)
{
    RunLedger ledger;
    ledger.table("layers", {"layer", "cycles"});
    ledger.addRow("layers",
                  {Value::text("c1"), Value::integer(10)});
    ledger.addRow("layers",
                  {Value::text("c2"), Value::integer(20)});
    const RunLedger::Table *table = ledger.findTable("layers");
    ASSERT_NE(table, nullptr);
    ASSERT_EQ(table->rows.size(), 2u);
    EXPECT_EQ(table->rows[1][1].asInt(), 20ull);
    EXPECT_EQ(ledger.findTable("missing"), nullptr);
}

TEST(RunLedgerDeath, RowWidthMustMatchColumns)
{
    RunLedger ledger;
    ledger.table("t", {"a", "b"});
    EXPECT_DEATH(ledger.addRow("t", {Value::integer(1)}), "");
}

TEST(RunLedger, JsonAndCsvAreDeterministic)
{
    const auto build = [] {
        RunLedger ledger;
        ledger.setReal("s", "x", 1.0 / 3.0);
        ledger.table("t", {"k", "v"});
        ledger.addRow("t", {Value::text("one"), Value::real(0.1)});
        return ledger;
    };
    EXPECT_EQ(build().json(), build().json());
    EXPECT_EQ(build().csv(), build().csv());

    const std::string csv = build().csv();
    EXPECT_NE(csv.find("# section s"), std::string::npos);
    EXPECT_NE(csv.find("# table t"), std::string::npos);
    EXPECT_NE(csv.find("k,v"), std::string::npos);
}

TEST(RunLedger, WritePicksFormatFromExtension)
{
    RunLedger ledger;
    ledger.setInt("s", "n", 1);
    const std::string json_path = "test_obs_ledger_out.json";
    const std::string csv_path = "test_obs_ledger_out.csv";
    ASSERT_TRUE(ledger.write(json_path));
    ASSERT_TRUE(ledger.write(csv_path));
    const auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream out;
        out << in.rdbuf();
        return out.str();
    };
    EXPECT_EQ(slurp(json_path), ledger.json());
    EXPECT_EQ(slurp(csv_path), ledger.csv());
    std::remove(json_path.c_str());
    std::remove(csv_path.c_str());
    EXPECT_FALSE(ledger.write("no/such/dir/ledger.json"));
}

// --- builders + audits over real runs ---------------------------------

class ObsFixture : public ::testing::Test
{
  protected:
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib{dev};
    estimator::NpuEstimator estimator{lib};

    npusim::SimResult
    simResult() const
    {
        const auto config = estimator::NpuConfig::superNpu();
        npusim::NpuSimulator sim(estimator.estimate(config));
        return sim.run(dnn::makeAlexNet(), 4);
    }
};

TEST_F(ObsFixture, SimResultPassesAuditAndFillsLedger)
{
    const npusim::SimResult result = simResult();
    const AuditReport audit = auditSim(result);
    EXPECT_TRUE(audit.ok()) << audit.summary();

    RunLedger ledger;
    addSimResult(ledger, result);
    const Value *total = ledger.find("sim", "totalCycles");
    ASSERT_NE(total, nullptr);
    EXPECT_EQ(total->asInt(), result.totalCycles);
    const RunLedger::Table *layers = ledger.findTable("layers");
    ASSERT_NE(layers, nullptr);
    EXPECT_EQ(layers->rows.size(), result.layers.size());
}

TEST_F(ObsFixture, CookedSimBooksAreCaught)
{
    npusim::SimResult result = simResult();
    result.totalCycles += 1; // breaks compute + prep + stall
    const AuditReport audit = auditSim(result);
    ASSERT_FALSE(audit.ok());
    EXPECT_NE(audit.summary().find("sim:totalCycles"),
              std::string::npos);
    EXPECT_NE(audit.summary().find("expected"), std::string::npos);
}

TEST_F(ObsFixture, CookedLayerDramStreamsAreCaught)
{
    npusim::SimResult result = simResult();
    ASSERT_FALSE(result.layers.empty());
    result.layers[0].dramWeightBytes += 8;
    const AuditReport audit = auditSim(result);
    ASSERT_FALSE(audit.ok());
    EXPECT_NE(audit.summary().find(":dramBytes"), std::string::npos);
}

TEST_F(ObsFixture, ServingRunPassesAuditAndFillsLedger)
{
    const dnn::Network net = dnn::makeMobileNet();
    const auto config = estimator::NpuConfig::superNpu();
    const auto estimate = estimator.estimate(config);
    serving::BatchServiceModel service(estimate, net);
    serving::ServingConfig serving_cfg;
    serving_cfg.chips = 2;
    serving_cfg.arrival.ratePerSec = 0.5 * 2.0 * service.peakRps(8);
    serving_cfg.batching.maxBatch = 8;
    serving_cfg.requests = 2000;
    const serving::ServingReport report =
        serving::ServingSimulator(service, serving_cfg).run();

    const AuditReport audit = auditServing(report);
    EXPECT_TRUE(audit.ok()) << audit.summary();

    RunLedger ledger;
    addServingReport(ledger, report);
    const Value *completed = ledger.find("serving", "completed");
    ASSERT_NE(completed, nullptr);
    EXPECT_EQ(completed->asInt(), report.completed);
    const RunLedger::Table *chips = ledger.findTable("chips");
    ASSERT_NE(chips, nullptr);
    EXPECT_EQ(chips->rows.size(), (std::size_t)report.chips);
}

TEST_F(ObsFixture, CookedServingBooksAreCaught)
{
    serving::ServingReport report;
    report.generated = 10;
    report.completed = 10;
    report.latencyP50 = 2.0; // above p95: tail ordering broken
    report.latencyP95 = 1.0;
    report.latencyP99 = 1.0;
    report.latencyP999 = 1.0;
    report.latencyMax = 2.5;
    report.maxBatchLaunched = 1;
    const AuditReport audit = auditServing(report);
    ASSERT_FALSE(audit.ok());
    EXPECT_NE(audit.summary().find("serving:latencyP50"),
              std::string::npos);
}

TEST_F(ObsFixture, KillRetryImbalanceIsCaught)
{
    serving::ServingReport report;
    report.resilienceActive = true;
    report.requestsKilled = 5;
    report.retriesTotal = 3; // + 0 give-ups != 5 killed
    const AuditReport audit = auditServing(report);
    ASSERT_FALSE(audit.ok());
    EXPECT_NE(audit.summary().find("serving:requestsKilled"),
              std::string::npos);
}

TEST(AuditReportMerge, CombinesViolations)
{
    AuditReport a, b;
    a.violations.push_back({"sim", "x", "1", "2"});
    b.violations.push_back({"serving", "y", "3", "4"});
    a.merge(b);
    EXPECT_EQ(a.violations.size(), 2u);
    EXPECT_EQ(a.violations[1].str(), "serving:y expected 3 got 4");
}

TEST(AuditEnforce, FatalOnViolations)
{
    AuditReport report;
    report.violations.push_back({"sim", "cycles", "1", "2"});
    EXPECT_EXIT(enforce(report, "test run"),
                ::testing::ExitedWithCode(1), "audit failed");
    enforce(AuditReport{}, "clean"); // no-op, must return
}

TEST(AuditEnabled, EnvironmentVariableWins)
{
    ::setenv("SUPERNPU_AUDIT", "1", 1);
    EXPECT_TRUE(auditEnabled());
    ::setenv("SUPERNPU_AUDIT", "0", 1);
    EXPECT_FALSE(auditEnabled());
    ::unsetenv("SUPERNPU_AUDIT");
}

// --- fault schedule / cache / pool builders ---------------------------

TEST(LedgerBuilders, FaultScheduleSummary)
{
    reliability::FaultScheduleConfig config;
    config.chips = 2;
    config.horizonSec = 1.0;
    config.pulseDropRatePerSec = 50.0;
    config.linkGlitchRatePerSec = 10.0;
    const auto schedule = reliability::FaultSchedule::generate(config);
    RunLedger ledger;
    addFaultSchedule(ledger, schedule);
    const Value *events = ledger.find("faults", "events");
    ASSERT_NE(events, nullptr);
    EXPECT_EQ(events->asInt(), schedule.size());
    const Value *drops = ledger.find("faults", "pulseDrops");
    ASSERT_NE(drops, nullptr);
    const Value *glitches = ledger.find("faults", "linkGlitches");
    ASSERT_NE(glitches, nullptr);
    EXPECT_EQ(drops->asInt() + glitches->asInt(), schedule.size());
}

TEST(LedgerBuilders, PoolStatsSection)
{
    ThreadPool pool(2);
    pool.parallelFor(10, [](std::size_t) {});
    pool.parallelFor(7, [](std::size_t) {});
    RunLedger ledger;
    addPoolStats(ledger, pool.stats());
    const Value *loops = ledger.find("threadPool", "loops");
    const Value *tasks = ledger.find("threadPool", "tasks");
    ASSERT_NE(loops, nullptr);
    ASSERT_NE(tasks, nullptr);
    EXPECT_EQ(loops->asInt(), 2ull);
    EXPECT_EQ(tasks->asInt(), 17ull);
}

} // namespace
} // namespace obs
} // namespace supernpu
