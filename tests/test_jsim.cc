/**
 * @file
 * Tests for the Josephson-junction transient simulator: linear
 * algebra, netlist construction, and the analog behaviour of the
 * demonstration circuits (JTL, splitter, DFF).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "jsim/cells.hh"
#include "jsim/circuit.hh"
#include "jsim/experiments.hh"
#include "jsim/linalg.hh"
#include "jsim/simulator.hh"

namespace supernpu {
namespace jsim {
namespace {

// --- linalg ----------------------------------------------------------

TEST(Linalg, SolvesIdentity)
{
    DenseMatrix eye(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
        eye.at(i, i) = 1.0;
    LuFactorization lu(eye);
    std::vector<double> b = {1.0, 2.0, 3.0};
    lu.solveInPlace(b);
    EXPECT_DOUBLE_EQ(b[0], 1.0);
    EXPECT_DOUBLE_EQ(b[1], 2.0);
    EXPECT_DOUBLE_EQ(b[2], 3.0);
}

TEST(Linalg, SolvesWithPivoting)
{
    // Leading zero forces a row swap.
    DenseMatrix m(2, 2);
    m.at(0, 0) = 0.0;
    m.at(0, 1) = 1.0;
    m.at(1, 0) = 2.0;
    m.at(1, 1) = 1.0;
    LuFactorization lu(m);
    std::vector<double> b = {3.0, 5.0};
    lu.solveInPlace(b); // x = (1, 3)
    EXPECT_NEAR(b[0], 1.0, 1e-12);
    EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(Linalg, ResidualOfRandomSystem)
{
    const std::size_t n = 12;
    DenseMatrix m(n, n);
    std::vector<double> x_true(n);
    // Deterministic well-conditioned matrix.
    for (std::size_t r = 0; r < n; ++r) {
        x_true[r] = (double)r - 5.0;
        for (std::size_t c = 0; c < n; ++c)
            m.at(r, c) = (r == c) ? 10.0 : std::sin((double)(r * n + c));
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            b[r] += m.at(r, c) * x_true[c];
    }
    LuFactorization lu(m);
    lu.solveInPlace(b);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(b[i], x_true[i], 1e-9);
}

TEST(LinalgDeath, SingularMatrixPanics)
{
    DenseMatrix z(2, 2);
    EXPECT_DEATH({ LuFactorization lu(z); }, "singular");
}

// --- circuit construction --------------------------------------------

TEST(Circuit, GroundPreExists)
{
    Circuit c;
    EXPECT_EQ(c.nodeCount(), 1u);
    EXPECT_EQ(c.addNode(), 1u);
    EXPECT_EQ(c.addNode(), 2u);
    EXPECT_EQ(c.nodeCount(), 3u);
}

TEST(Circuit, JunctionLookupByLabel)
{
    Circuit c;
    const NodeId n = c.addNode();
    c.addJunction("J1", n, ground, 1e-4, 8.0, 4e-14);
    c.addJunction("J2", n, ground, 1e-4, 8.0, 4e-14);
    EXPECT_EQ(c.junctionIndex("J2"), 1u);
    EXPECT_DEATH((void)c.junctionIndex("nope"), "no junction");
}

TEST(Circuit, TotalBiasCurrent)
{
    Circuit c;
    const NodeId n = c.addNode();
    c.addBias(n, 70e-6);
    c.addBias(n, 30e-6);
    EXPECT_NEAR(c.totalBiasCurrent(), 100e-6, 1e-18);
}

TEST(Circuit, NetlistDumpListsEveryElement)
{
    DeviceParams params;
    Circuit circuit;
    const JtlChain chain = appendJtl(circuit, params, 2, "J");
    attachPulseInput(circuit, params, chain.input, {10e-12});
    const std::string netlist = circuit.dumpNetlist();
    EXPECT_NE(netlist.find("BJ0"), std::string::npos);
    EXPECT_NE(netlist.find("BJ1"), std::string::npos);
    EXPECT_NE(netlist.find("ic=100.0uA"), std::string::npos);
    EXPECT_NE(netlist.find("pH"), std::string::npos);  // the JTL L
    EXPECT_NE(netlist.find("I"), std::string::npos);   // bias rows
    EXPECT_NE(netlist.find("w=6.0ps"), std::string::npos); // pulse
}

TEST(CircuitDeath, RejectsUnknownNodes)
{
    Circuit c;
    EXPECT_DEATH(c.addInductor(5, ground, 1e-12), "unknown node");
    EXPECT_DEATH(c.addJunction("J", 7, ground, 1e-4, 8.0, 4e-14),
                 "unknown node");
}

// --- JTL behaviour ----------------------------------------------------

struct JtlFixture
{
    DeviceParams params;
    Circuit circuit;
    JtlChain chain;

    explicit JtlFixture(std::size_t stages,
                        const std::vector<double> &pulse_times)
    {
        chain = appendJtl(circuit, params, stages, "J");
        attachPulseInput(circuit, params, chain.input, pulse_times);
    }

    TransientResult
    run(double duration)
    {
        TransientConfig config;
        config.duration = duration;
        TransientSimulator sim(circuit, config);
        return sim.run();
    }
};

/** Each input pulse launches exactly one SFQ down the whole chain. */
class JtlPulseCount : public ::testing::TestWithParam<int>
{
};

TEST_P(JtlPulseCount, OneSlipPerPulsePerStage)
{
    const int pulses = GetParam();
    std::vector<double> times;
    for (int i = 0; i < pulses; ++i)
        times.push_back(40e-12 + 80e-12 * i);
    JtlFixture fixture(8, times);
    const auto result = fixture.run(60e-12 + 80e-12 * pulses);
    for (std::size_t j : fixture.chain.junctionIndices)
        EXPECT_EQ(result.switchCount(j), (std::size_t)pulses);
}

INSTANTIATE_TEST_SUITE_P(PulseTrains, JtlPulseCount,
                         ::testing::Values(1, 2, 3, 5));

TEST(Jtl, PropagationDelayIsPicosecondScale)
{
    JtlFixture fixture(10, {50e-12});
    const auto result = fixture.run(200e-12);
    const double delay = propagationDelay(
        result, fixture.chain.junctionIndices.front(),
        fixture.chain.junctionIndices.back());
    // 9 hops: expect sub-ps to few-ps per stage, ~10 kA/cm2 Nb.
    EXPECT_GT(delay, 1e-12);
    EXPECT_LT(delay, 30e-12);
}

TEST(Jtl, DelayGrowsWithChainLength)
{
    JtlFixture short_chain(4, {50e-12});
    JtlFixture long_chain(12, {50e-12});
    const auto rs = short_chain.run(200e-12);
    const auto rl = long_chain.run(200e-12);
    const double ds = propagationDelay(
        rs, short_chain.chain.junctionIndices.front(),
        short_chain.chain.junctionIndices.back());
    const double dl = propagationDelay(
        rl, long_chain.chain.junctionIndices.front(),
        long_chain.chain.junctionIndices.back());
    EXPECT_GT(dl, ds);
}

TEST(Jtl, QuietChainDoesNotSwitch)
{
    DeviceParams params;
    Circuit circuit;
    const JtlChain chain = appendJtl(circuit, params, 6, "J");
    (void)chain;
    TransientConfig config;
    config.duration = 300e-12;
    TransientSimulator sim(circuit, config);
    const auto result = sim.run();
    for (std::size_t j = 0; j < circuit.junctions().size(); ++j)
        EXPECT_EQ(result.switchCount(j), 0u);
}

TEST(Jtl, SwitchingEnergyMatchesIcPhi0PerSlip)
{
    JtlFixture fixture(5, {50e-12});
    TransientConfig config;
    config.duration = 150e-12;
    TransientSimulator sim(fixture.circuit, config);
    const auto result = sim.run();
    const double energy = sim.switchingEnergy(result);
    // 5 junctions x 1 slip x Ic*Phi0.
    const double expected = 5.0 * 1e-4 * phi0;
    EXPECT_NEAR(energy, expected, expected * 0.01);
}

// --- splitter ---------------------------------------------------------

TEST(Splitter, DuplicatesEveryPulse)
{
    DeviceParams params;
    Circuit circuit;
    const JtlChain feed = appendJtl(circuit, params, 3, "F");
    attachPulseInput(circuit, params, feed.input,
                     {50e-12, 130e-12, 210e-12});
    const Splitter splitter =
        appendSplitter(circuit, params, feed.output, "S");
    // Output JTLs so each branch is properly loaded.
    const JtlChain out_a =
        appendJtlFrom(circuit, params, splitter.outputA, 2, "A");
    const JtlChain out_b =
        appendJtlFrom(circuit, params, splitter.outputB, 2, "B");

    TransientConfig config;
    config.duration = 300e-12;
    TransientSimulator sim(circuit, config);
    const auto result = sim.run();

    EXPECT_EQ(result.switchCount(out_a.junctionIndices.back()), 3u);
    EXPECT_EQ(result.switchCount(out_b.junctionIndices.back()), 3u);
}

// --- DFF ---------------------------------------------------------------

struct DffFixture
{
    DeviceParams params;
    Circuit circuit;
    Dff dff;
    JtlChain outJtl;

    DffFixture(const std::vector<double> &data_times,
               const std::vector<double> &clock_times)
    {
        JtlChain data = appendJtl(circuit, params, 3, "D");
        attachPulseInput(circuit, params, data.input, data_times);
        JtlChain clock = appendJtl(circuit, params, 3, "C");
        attachPulseInput(circuit, params, clock.input, clock_times);
        dff = appendDff(circuit, params, DffParams{}, "F");
        circuit.addInductor(data.output, dff.dataIn,
                            params.jtlInductance);
        circuit.addInductor(clock.output, dff.clockIn,
                            params.jtlInductance);
        outJtl = appendJtlFrom(circuit, params, dff.output, 3, "O");
    }

    TransientResult
    run(double duration)
    {
        TransientConfig config;
        config.duration = duration;
        TransientSimulator sim(circuit, config);
        return sim.run();
    }
};

TEST(Dff, StoresAndReleasesOnClock)
{
    DffFixture fixture({50e-12}, {120e-12});
    const auto result = fixture.run(250e-12);
    EXPECT_EQ(result.switchCount(fixture.dff.storeJunction), 1u);
    EXPECT_EQ(result.switchCount(fixture.dff.releaseJunction), 1u);
    EXPECT_EQ(result.switchCount(fixture.outJtl.junctionIndices.back()),
              1u);
    // The release strictly follows the clock arrival, not the data.
    const double release =
        result.switchTimes[fixture.dff.releaseJunction].front();
    EXPECT_GT(release, 120e-12);
}

TEST(Dff, ClockWithoutDataIsAbsorbed)
{
    DffFixture fixture({}, {100e-12, 180e-12});
    const auto result = fixture.run(260e-12);
    EXPECT_EQ(result.switchCount(fixture.dff.releaseJunction), 0u);
    EXPECT_EQ(result.switchCount(fixture.outJtl.junctionIndices.back()),
              0u);
}

TEST(Dff, HoldsValueAcrossIdleClockThenReleases)
{
    // data @50; clocks @100 (release), @180 (no data -> absorbed),
    // data @250; clock @300 (release again).
    DffFixture fixture({50e-12, 250e-12},
                       {100e-12, 180e-12, 300e-12});
    const auto result = fixture.run(380e-12);
    EXPECT_EQ(result.switchCount(fixture.dff.storeJunction), 2u);
    EXPECT_EQ(result.switchCount(fixture.dff.releaseJunction), 2u);
    EXPECT_EQ(result.switchCount(fixture.outJtl.junctionIndices.back()),
              2u);
}

/** Logical-one streams of different lengths all come out intact. */
class DffTrainLength : public ::testing::TestWithParam<int>
{
};

TEST_P(DffTrainLength, EveryStoredBitIsReleased)
{
    const int bits = GetParam();
    std::vector<double> data, clocks;
    for (int i = 0; i < bits; ++i) {
        data.push_back(50e-12 + 120e-12 * i);
        clocks.push_back(110e-12 + 120e-12 * i);
    }
    DffFixture fixture(data, clocks);
    const auto result = fixture.run(120e-12 * bits + 120e-12);
    EXPECT_EQ(result.switchCount(fixture.dff.releaseJunction),
              (std::size_t)bits);
}

INSTANTIATE_TEST_SUITE_P(Trains, DffTrainLength,
                         ::testing::Values(1, 2, 4));

// --- simulator config validation ---------------------------------------

TEST(TransientDeath, RejectsEmptyCircuit)
{
    Circuit c;
    TransientConfig config;
    EXPECT_DEATH({ TransientSimulator sim(c, config); },
                 "no nodes besides ground");
}

// --- waveform capture -------------------------------------------------------

TEST(Waveforms, PulseIntegralIsOneFluxQuantum)
{
    // Fig. 1(b): the voltage pulse's time-integral is Phi0 — the
    // defining SFQ invariant, independent of pulse shape.
    DeviceParams params;
    Circuit circuit;
    const JtlChain chain = appendJtl(circuit, params, 6, "J");
    attachPulseInput(circuit, params, chain.input, {30e-12});

    TransientConfig config;
    config.duration = 80e-12;
    config.recordNodes = {chain.output};
    config.recordStride = 1;
    TransientSimulator sim(circuit, config);
    const auto result = sim.run();

    ASSERT_EQ(result.waveforms.size(), 1u);
    const Waveform &wave = result.waveforms.front();
    ASSERT_GT(wave.voltages.size(), 100u);

    double flux = 0.0, peak = 0.0;
    for (std::size_t i = 0; i + 1 < wave.voltages.size(); ++i) {
        flux += wave.voltages[i] * (wave.times[i + 1] - wave.times[i]);
        peak = std::max(peak, wave.voltages[i]);
    }
    // Within ~15% of Phi0 (the input-coupling tail adds a little).
    EXPECT_NEAR(flux, phi0, 0.15 * phi0);
    // Millivolt-class picosecond pulse.
    EXPECT_GT(peak, 0.2e-3);
    EXPECT_LT(peak, 10e-3);
    EXPECT_DOUBLE_EQ(result.peakVoltage(0), peak);
}

TEST(Waveforms, QuietNodeStaysFlatAfterBiasSettling)
{
    DeviceParams params;
    Circuit circuit;
    const JtlChain chain = appendJtl(circuit, params, 4, "J");
    (void)chain;
    TransientConfig config;
    config.duration = 60e-12;
    config.recordNodes = {chain.output};
    TransientSimulator sim(circuit, config);
    const auto result = sim.run();
    // The bias step at t=0 rings the plasma resonance briefly; after
    // settling, a pulse-free node shows no voltage.
    const Waveform &wave = result.waveforms.front();
    double late_peak = 0.0;
    for (std::size_t i = 0; i < wave.voltages.size(); ++i) {
        if (wave.times[i] > 30e-12)
            late_peak = std::max(late_peak, std::fabs(wave.voltages[i]));
    }
    EXPECT_LT(late_peak, 0.05e-3);
}

TEST(WaveformsDeath, RejectsUnknownNode)
{
    DeviceParams params;
    Circuit circuit;
    appendJtl(circuit, params, 2, "J");
    TransientConfig config;
    config.recordNodes = {99};
    TransientSimulator sim(circuit, config);
    EXPECT_DEATH((void)sim.run(), "recorded node out of range");
}

// --- clocked AND gate -----------------------------------------------------

struct AndFixture
{
    DeviceParams params;
    Circuit circuit;
    ClockedAnd gate;
    JtlChain outJtl;

    AndFixture(const std::vector<double> &a_times,
               const std::vector<double> &b_times,
               const std::vector<double> &clock_times)
    {
        JtlChain a = appendJtl(circuit, params, 3, "A");
        if (!a_times.empty())
            attachPulseInput(circuit, params, a.input, a_times);
        JtlChain b = appendJtl(circuit, params, 3, "B");
        if (!b_times.empty())
            attachPulseInput(circuit, params, b.input, b_times);
        JtlChain clk = appendJtl(circuit, params, 3, "C");
        attachPulseInput(circuit, params, clk.input, clock_times);

        gate = appendClockedAnd(circuit, params, ClockedAndParams{},
                                "G");
        circuit.addInductor(a.output, gate.inputA,
                            params.jtlInductance);
        circuit.addInductor(b.output, gate.inputB,
                            params.jtlInductance);
        circuit.addInductor(clk.output, gate.clockIn,
                            params.jtlInductance);
        outJtl = appendJtl(circuit, params, 2, "O");
        circuit.addInductor(gate.output, outJtl.input,
                            params.jtlInductance);
    }

    std::size_t
    outputPulses(double duration)
    {
        TransientConfig config;
        config.duration = duration;
        TransientSimulator sim(circuit, config);
        const auto result = sim.run();
        return result.switchCount(outJtl.junctionIndices.back());
    }
};

/** Truth table of the analog clocked AND. */
struct AndCase
{
    bool a, b;
    std::size_t expect;
};

class ClockedAndTruthTable : public ::testing::TestWithParam<AndCase>
{
};

TEST_P(ClockedAndTruthTable, MatchesBooleanAnd)
{
    const AndCase cs = GetParam();
    const std::vector<double> pulse = {50e-12};
    const std::vector<double> none = {};
    AndFixture fixture(cs.a ? pulse : none, cs.b ? pulse : none,
                       {120e-12});
    EXPECT_EQ(fixture.outputPulses(250e-12), cs.expect);
}

INSTANTIATE_TEST_SUITE_P(TruthTable, ClockedAndTruthTable,
                         ::testing::Values(AndCase{false, false, 0},
                                           AndCase{false, true, 0},
                                           AndCase{true, false, 0},
                                           AndCase{true, true, 1}));

TEST(ClockedAndExtra, OperatesOverMultipleCycles)
{
    // Cycle 1: a & b -> 1. Cycle 2: a only -> 0. Cycle 3: both -> 1.
    AndFixture fixture({50e-12, 200e-12, 350e-12}, {50e-12, 350e-12},
                       {120e-12, 270e-12, 420e-12});
    EXPECT_EQ(fixture.outputPulses(520e-12), 2u);
}

// --- clocked OR gate --------------------------------------------------------

struct OrCase
{
    bool a, b;
    std::size_t expect;
};

class ClockedOrTruthTable : public ::testing::TestWithParam<OrCase>
{
};

TEST_P(ClockedOrTruthTable, MatchesBooleanOr)
{
    const OrCase cs = GetParam();
    DeviceParams params;
    Circuit circuit;
    JtlChain a = appendJtl(circuit, params, 3, "A");
    if (cs.a)
        attachPulseInput(circuit, params, a.input, {50e-12});
    JtlChain b = appendJtl(circuit, params, 3, "B");
    if (cs.b)
        attachPulseInput(circuit, params, b.input, {52e-12});
    JtlChain clk = appendJtl(circuit, params, 3, "C");
    attachPulseInput(circuit, params, clk.input, {120e-12});

    const ClockedOr gate = appendClockedOr(circuit, params, "G");
    circuit.addInductor(a.output, gate.inputA, params.jtlInductance);
    circuit.addInductor(b.output, gate.inputB, params.jtlInductance);
    circuit.addInductor(clk.output, gate.clockIn,
                        params.jtlInductance);
    const JtlChain out = appendJtl(circuit, params, 2, "O");
    circuit.addInductor(gate.output, out.input, params.jtlInductance);

    TransientConfig config;
    config.duration = 220e-12;
    TransientSimulator sim(circuit, config);
    const auto result = sim.run();
    EXPECT_EQ(result.switchCount(out.junctionIndices.back()),
              cs.expect);
    // The shared loop never double-stores.
    EXPECT_LE(result.switchCount(gate.loop.storeJunction), 1u);
}

INSTANTIATE_TEST_SUITE_P(TruthTable, ClockedOrTruthTable,
                         ::testing::Values(OrCase{false, false, 0},
                                           OrCase{false, true, 1},
                                           OrCase{true, false, 1},
                                           OrCase{true, true, 1}));

// --- analog clocking experiment (Fig. 7 at the device level) -------------

TEST(ShiftRegisterExperiment, DeliversAllBitsAtModestClock)
{
    // 25 GHz is comfortably inside both schemes' margins.
    EXPECT_EQ(shiftRegisterOutputCount(ClockRouting::Concurrent,
                                       40e-12, 4),
              4u);
    EXPECT_EQ(shiftRegisterOutputCount(ClockRouting::CounterFlow,
                                       40e-12, 4),
              4u);
}

TEST(ShiftRegisterExperiment, DropsBitsWhenOverclocked)
{
    EXPECT_LT(shiftRegisterOutputCount(ClockRouting::Concurrent,
                                       8e-12, 4),
              4u);
}

TEST(Margins, DffBiasMarginIsWide)
{
    // A manufacturable cell needs wide bias margins; the tuned DFF
    // tolerates at least +/-30% on its loop bias.
    const Margin margin =
        dffParameterMargin(DffParameter::LoopBias, 15.0, 45.0);
    EXPECT_GE(margin.worstPercent(), 30.0);
}

TEST(Margins, ReleaseJunctionIsTheTightestParameter)
{
    // The release junction's Ic sets the store/escape thresholds:
    // its margin is real but narrower than the bias margin.
    const Margin ic =
        dffParameterMargin(DffParameter::ReleaseIc, 10.0, 60.0);
    EXPECT_GE(ic.worstPercent(), 20.0);
    const Margin bias =
        dffParameterMargin(DffParameter::LoopBias, 10.0, 60.0);
    EXPECT_LE(ic.worstPercent(), bias.worstPercent());
}

TEST(Margins, WorstPercentIsTheSmallerSide)
{
    Margin margin;
    margin.lowPercent = 40.0;
    margin.highPercent = 30.0;
    EXPECT_DOUBLE_EQ(margin.worstPercent(), 30.0);
}

TEST(ShiftRegisterExperiment, CounterFlowTopsOutBelowConcurrent)
{
    // The analog measurement behind Fig. 7(c): the same storage
    // cells clock measurably slower when the clock runs against the
    // data (the scheme feedback loops force).
    const double concurrent =
        maxShiftClockGhz(ClockRouting::Concurrent);
    const double counter =
        maxShiftClockGhz(ClockRouting::CounterFlow);
    EXPECT_GT(concurrent, 50.0);
    EXPECT_GT(counter, 30.0);
    EXPECT_GT(concurrent, counter * 1.1);
}

} // namespace
} // namespace jsim
} // namespace supernpu
