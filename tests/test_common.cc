/**
 * @file
 * Unit tests for the common module: units, stats, tables, RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace supernpu {
namespace {

// --- units -----------------------------------------------------------

TEST(Units, FrequencyPeriodRoundTrip)
{
    EXPECT_DOUBLE_EQ(units::psToGHz(1000.0), 1.0);
    EXPECT_DOUBLE_EQ(units::ghzToPs(1.0), 1000.0);
    for (double f : {0.7, 52.6, 133.0}) {
        EXPECT_NEAR(units::psToGHz(units::ghzToPs(f)), f, 1e-9);
    }
}

TEST(Units, GhzToHz)
{
    EXPECT_DOUBLE_EQ(units::ghzToHz(52.6), 52.6e9);
}

TEST(Units, PowerEnergyConversions)
{
    EXPECT_DOUBLE_EQ(units::uwToW(3.6), 3.6e-6);
    EXPECT_DOUBLE_EQ(units::mwToW(5.6), 5.6e-3);
    EXPECT_DOUBLE_EQ(units::ajToJ(1.4), 1.4e-18);
}

TEST(Units, CapacityConstants)
{
    EXPECT_EQ(units::MiB, 1024ull * units::kiB);
    EXPECT_EQ(units::GiB, 1024ull * units::MiB);
    EXPECT_DOUBLE_EQ(units::gbpsToBps(300.0), 300e9);
}

TEST(Units, SiPrefixedFormatting)
{
    EXPECT_EQ(units::siPrefixed(3.366e15, 2), "3.37 P");
    EXPECT_EQ(units::siPrefixed(52.6e9, 1), "52.6 G");
    EXPECT_EQ(units::siPrefixed(3.6e-6, 1), "3.6 u");
    EXPECT_EQ(units::siPrefixed(0.0, 1), "0.0 ");
}

TEST(Units, BytesHuman)
{
    EXPECT_EQ(units::bytesHuman(512), "512 B");
    EXPECT_EQ(units::bytesHuman(24ull * units::MiB), "24.0 MiB");
    EXPECT_EQ(units::bytesHuman(64ull * units::kiB), "64.0 KiB");
}

// --- logging ----------------------------------------------------------

TEST(LoggingDeath, PanicAbortsWithComposedMessage)
{
    EXPECT_DEATH(panic("broke at step ", 7, " of ", "run"),
                 "broke at step 7 of run");
}

TEST(LoggingDeath, FatalExitsCleanlyWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config: ", 42),
                ::testing::ExitedWithCode(1), "bad config: 42");
}

TEST(LoggingDeath, AssertMacroNamesTheCondition)
{
    const int x = 3;
    EXPECT_DEATH(SUPERNPU_ASSERT(x == 4, "x was ", x),
                 "assertion 'x == 4' failed");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("approximation in effect: ", 1.5);
    inform("status ", "message");
    SUCCEED();
}

// --- stats -----------------------------------------------------------

TEST(Stats, EmptyAccumulator)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.geomean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.min(), 0.0);
    EXPECT_DOUBLE_EQ(stats.max(), 0.0);
}

TEST(Stats, EmptyExtremaStayZeroAndRecover)
{
    // The empty contract is load-bearing: serving reports built from
    // zero-completion runs must publish 0.0 extrema, and the audit
    // layer pins them to 0. A first negative sample must still
    // displace the 0.0 placeholder in both directions.
    RunningStats stats;
    EXPECT_DOUBLE_EQ(stats.sum(), 0.0);
    stats.add(-4.0);
    EXPECT_DOUBLE_EQ(stats.min(), -4.0);
    EXPECT_DOUBLE_EQ(stats.max(), -4.0);
}

TEST(Histogram, EmptyMomentsAreZero)
{
    const Histogram hist;
    EXPECT_DOUBLE_EQ(hist.min(), 0.0);
    EXPECT_DOUBLE_EQ(hist.max(), 0.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
    EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
    EXPECT_DOUBLE_EQ(hist.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(hist.percentile(100.0), 0.0);
}

TEST(Stats, BasicMoments)
{
    RunningStats stats;
    for (double v : {2.0, 8.0})
        stats.add(v);
    EXPECT_EQ(stats.count(), 2u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.geomean(), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 8.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
}

TEST(Stats, GeomeanSkipsNonPositive)
{
    RunningStats stats;
    stats.add(-1.0);
    stats.add(0.0);
    stats.add(4.0);
    stats.add(9.0);
    EXPECT_NEAR(stats.geomean(), 6.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), -1.0);
    EXPECT_EQ(stats.count(), 4u);
}

TEST(Stats, VectorHelpers)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 100.0}), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

/** Geometric mean is invariant under reordering (property). */
TEST(Stats, GeomeanOrderInvariant)
{
    const std::vector<double> a = {3.0, 7.0, 0.5, 11.0, 2.2};
    std::vector<double> b = a;
    std::reverse(b.begin(), b.end());
    EXPECT_NEAR(geomean(a), geomean(b), 1e-12);
}

TEST(Stats, ExactPercentileInterpolates)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
    const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 75.0), 3.25);
}

TEST(Histogram, EmptyAndSingleSample)
{
    Histogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.percentile(99.0), 0.0);
    hist.add(3.5e-3);
    EXPECT_EQ(hist.count(), 1u);
    // A single sample pins every percentile to itself via the
    // min/max clamp.
    EXPECT_DOUBLE_EQ(hist.percentile(0.0), 3.5e-3);
    EXPECT_DOUBLE_EQ(hist.percentile(50.0), 3.5e-3);
    EXPECT_DOUBLE_EQ(hist.percentile(100.0), 3.5e-3);
}

TEST(Histogram, TracksExactMomentsAndClampsRange)
{
    Histogram hist(1e-6, 1e2, 10);
    // Underflow (including zero) and overflow land in the clamp bins.
    hist.add(0.0);
    hist.add(1e-9);
    hist.add(5.0);
    hist.add(1e6);
    EXPECT_EQ(hist.count(), 4u);
    EXPECT_DOUBLE_EQ(hist.min(), 0.0);
    EXPECT_DOUBLE_EQ(hist.max(), 1e6);
    EXPECT_DOUBLE_EQ(hist.sum(), 1e6 + 5.0 + 1e-9);
    EXPECT_DOUBLE_EQ(hist.percentile(100.0), 1e6);
    EXPECT_DOUBLE_EQ(hist.percentile(0.0), 0.0);
}

/**
 * Sketch percentiles track exact percentiles within the documented
 * bin ratio (10^(1/binsPerDecade)) on a deterministic log-uniform
 * sample set.
 */
TEST(Histogram, PercentilesMatchExactWithinBinResolution)
{
    Rng rng(99);
    Histogram hist(1e-6, 1e1, 53);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) {
        // Log-uniform latencies from 10 us to 1 s.
        const double value =
            std::pow(10.0, rng.uniform(-5.0, 0.0));
        samples.push_back(value);
        hist.add(value);
    }
    const double ratio = std::pow(10.0, 1.0 / 53.0);
    for (double p : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
        const double exact = percentile(samples, p);
        const double sketch = hist.percentile(p);
        EXPECT_LT(sketch / exact, ratio * 1.01) << "p" << p;
        EXPECT_GT(sketch / exact, 1.0 / (ratio * 1.01)) << "p" << p;
    }
}

/** Percentiles are monotone in p by construction. */
TEST(Histogram, PercentileMonotoneInP)
{
    Rng rng(7);
    Histogram hist;
    for (int i = 0; i < 5000; ++i)
        hist.add(1e-4 * (1.0 + rng.uniform()));
    double previous = 0.0;
    for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
        const double value = hist.percentile(p);
        EXPECT_GE(value, previous) << "p" << p;
        previous = value;
    }
}

// --- non-finite exclusion --------------------------------------------

TEST(Stats, NonFiniteSamplesAreExcludedFromEveryMoment)
{
    // A NaN that reaches min/max first sticks forever (NaN wins
    // every std::min/std::max comparison it enters first) and any
    // non-finite sample poisons the running sum; both corrupted the
    // serving latency roll-ups before add() learned to reject them.
    RunningStats stats;
    stats.add(std::numeric_limits<double>::quiet_NaN());
    stats.add(std::numeric_limits<double>::infinity());
    stats.add(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_EQ(stats.nonFiniteCount(), 3u);
    EXPECT_DOUBLE_EQ(stats.sum(), 0.0);

    stats.add(2.0);
    stats.add(std::numeric_limits<double>::quiet_NaN());
    stats.add(4.0);
    EXPECT_EQ(stats.count(), 2u);
    EXPECT_EQ(stats.nonFiniteCount(), 4u);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 4.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 6.0);
}

TEST(Stats, PercentileDropsNonFiniteBeforeSorting)
{
    // NaN breaks std::sort's strict weak order, so a poisoned vector
    // made the selected rank unspecified. The finite answer must
    // match the same set without the NaNs.
    std::vector<double> clean{1.0, 2.0, 3.0, 4.0};
    std::vector<double> poisoned{
        std::numeric_limits<double>::quiet_NaN(), 1.0, 2.0,
        std::numeric_limits<double>::quiet_NaN(), 3.0, 4.0};
    for (double p : {0.0, 25.0, 50.0, 90.0, 100.0})
        EXPECT_DOUBLE_EQ(percentile(poisoned, p),
                         percentile(clean, p))
            << "p" << p;
    EXPECT_DOUBLE_EQ(
        percentile({std::numeric_limits<double>::infinity()}, 50.0),
        0.0);
}

TEST(Histogram, NonFiniteSamplesSkipTheBins)
{
    // A NaN fails `sample >= lo` and so landed in the underflow bin,
    // dragging every low quantile toward min(); it must not count at
    // all.
    Histogram poisoned, clean;
    poisoned.add(1.0);
    poisoned.add(std::numeric_limits<double>::quiet_NaN());
    poisoned.add(std::numeric_limits<double>::infinity());
    poisoned.add(3.0);
    clean.add(1.0);
    clean.add(3.0);
    EXPECT_EQ(poisoned.count(), 2u);
    EXPECT_EQ(poisoned.nonFiniteCount(), 2u);
    EXPECT_DOUBLE_EQ(poisoned.min(), 1.0);
    EXPECT_DOUBLE_EQ(poisoned.max(), 3.0);
    for (double p : {0.0, 25.0, 50.0, 75.0, 100.0})
        EXPECT_DOUBLE_EQ(poisoned.percentile(p),
                         clean.percentile(p))
            << "p" << p;
}

// --- table -----------------------------------------------------------

TEST(Table, AlignsColumnsAndSeparatesHeader)
{
    TextTable table("demo");
    table.row().cell("name").cell("value");
    table.row().cell("x").cell(3.14159, 2);
    table.row().cell("long-name").cell(7ll);
    const std::string rendered = table.str();
    EXPECT_NE(rendered.find("== demo =="), std::string::npos);
    EXPECT_NE(rendered.find("3.14"), std::string::npos);
    EXPECT_NE(rendered.find("long-name"), std::string::npos);
    // Header separator exists.
    EXPECT_NE(rendered.find("----"), std::string::npos);
}

TEST(Table, NumericCellFormats)
{
    TextTable table;
    table.row().cell(-5ll).cell(42ull).cell(1.5, 3).cell((std::size_t)9);
    const std::string rendered = table.str();
    EXPECT_NE(rendered.find("-5"), std::string::npos);
    EXPECT_NE(rendered.find("42"), std::string::npos);
    EXPECT_NE(rendered.find("1.500"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials)
{
    TextTable table("ignored title");
    table.row().cell("plain").cell("with,comma").cell("with\"quote");
    table.row().cell(1.5, 1).cell(2ll).cell("x");
    const std::string csv = table.csv();
    EXPECT_EQ(csv,
              "plain,\"with,comma\",\"with\"\"quote\"\n1.5,2,x\n");
    // The title never leaks into machine-readable output.
    EXPECT_EQ(csv.find("ignored"), std::string::npos);
}

TEST(Table, CsvOfEmptyTableIsEmpty)
{
    TextTable table;
    EXPECT_EQ(table.csv(), "");
}

// --- rng -------------------------------------------------------------

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange)
{
    Rng rng;
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusively)
{
    Rng rng;
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.uniformInt(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments)
{
    Rng rng;
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

} // namespace
} // namespace supernpu
