/**
 * @file
 * End-to-end functional inference tests: whole quantized CNNs run
 * through the cycle-accurate systolic model must match the golden
 * pipeline bit-exactly.
 */

#include <gtest/gtest.h>

#include "functional/inference.hh"

namespace supernpu {
namespace functional {
namespace {

/** A small VGG-style network with pooling and FC layers. */
dnn::Network
tinyVgg()
{
    dnn::Network net;
    net.name = "TinyVGG";
    net.layers = {
        dnn::conv("conv1", 3, 16, 8, 3),
        dnn::conv("conv2", 8, 8, 16, 3),   // pool 16 -> 8
        dnn::conv("conv3", 16, 4, 16, 3),  // pool 8 -> 4
        dnn::fullyConnected("fc1", 16 * 2 * 2, 32), // pool + flatten
        dnn::fullyConnected("fc2", 32, 10),
    };
    net.check();
    return net;
}

/** A MobileNet-flavoured network with depthwise separable blocks. */
dnn::Network
tinyMobile()
{
    dnn::Network net;
    net.name = "TinyMobile";
    net.layers = {
        dnn::conv("conv1", 3, 16, 8, 3, 2), // -> 8
        dnn::depthwise("dw2", 8, 8, 1),
        dnn::conv("pw2", 8, 8, 16, 1, 1, 0),
        dnn::depthwise("dw3", 16, 8, 2), // -> 4
        dnn::conv("pw3", 16, 4, 24, 1, 1, 0),
        dnn::fullyConnected("fc", 24 * 2 * 2, 10), // pool + flatten
    };
    net.check();
    return net;
}

/** A strided residual-style stack (projection path omitted). */
dnn::Network
tinyRes()
{
    dnn::Network net;
    net.name = "TinyRes";
    net.layers = {
        dnn::conv("conv1", 3, 12, 16, 3),
        dnn::conv("b1_1x1a", 16, 12, 8, 1, 1, 0),
        dnn::conv("b1_3x3", 8, 12, 8, 3, 2),
        dnn::conv("b1_1x1b", 8, 6, 32, 1, 1, 0),
        dnn::fullyConnected("fc", 32 * 3 * 3, 10), // pool + flatten
    };
    net.check();
    return net;
}

TEST(Pipeline, BuildsTinyVggWithPoolsAndFlatten)
{
    Rng rng(1);
    const InferencePipeline pipe = buildPipeline(tinyVgg(), rng);
    ASSERT_EQ(pipe.layers.size(), 5u);
    EXPECT_EQ(pipe.layers[0].maxPool2Count, 1); // 16 -> 8
    EXPECT_EQ(pipe.layers[1].maxPool2Count, 1); // 8 -> 4
    EXPECT_EQ(pipe.layers[2].maxPool2Count, 1); // 4 -> 2 before fc
    EXPECT_TRUE(pipe.layers[3].flattenBefore);
    EXPECT_FALSE(pipe.layers[0].flattenBefore);
    // The classifier head keeps its signed logits.
    EXPECT_FALSE(pipe.layers[4].relu);
}

TEST(Pipeline, PostOpsClampAndRectify)
{
    InferenceLayer layer;
    layer.shape = dnn::conv("c", 1, 2, 1, 1, 1, 0);
    layer.postShift = 0;
    layer.relu = true;
    Tensor3 raw(1, 2, 2);
    raw.at(0, 0, 0) = 300;   // clamps to 127
    raw.at(0, 0, 1) = -5;    // ReLU to 0
    raw.at(0, 1, 0) = 64;    // passes through
    raw.at(0, 1, 1) = -4000; // clamp then ReLU
    const Tensor3 out = applyPostOps(raw, layer);
    EXPECT_EQ(out.at(0, 0, 0), 127);
    EXPECT_EQ(out.at(0, 0, 1), 0);
    EXPECT_EQ(out.at(0, 1, 0), 64);
    EXPECT_EQ(out.at(0, 1, 1), 0);
}

TEST(Pipeline, PostShiftScalesWithFanIn)
{
    Rng rng(5);
    const InferencePipeline pipe = buildPipeline(tinyVgg(), rng);
    // conv3 has 16*9 = 144 taps vs conv1's 27: half a bit of shift
    // per fan-in doubling.
    EXPECT_GT(pipe.layers[2].postShift, pipe.layers[0].postShift);
}

/** Whole-network equality across PE-array geometries. */
struct GeometryCase
{
    int rows, cols;
};

class EndToEndInference
    : public ::testing::TestWithParam<GeometryCase>
{
};

TEST_P(EndToEndInference, TinyVggMatchesGolden)
{
    Rng rng(42);
    const InferencePipeline pipe = buildPipeline(tinyVgg(), rng);
    Rng data_rng(7);
    Tensor3 input(3, 16, 16);
    input.fillRandom(data_rng);

    const Tensor3 golden = runGolden(pipe, input);
    const PipelineRunStats run = runSystolic(
        pipe, input, GetParam().rows, GetParam().cols);
    EXPECT_TRUE(run.output == golden);
    EXPECT_GT(run.weightMappings, 0ull);
    EXPECT_GT(run.arrayCycles, 0ull);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, EndToEndInference,
    ::testing::Values(GeometryCase{64, 16}, GeometryCase{32, 8},
                      GeometryCase{128, 4}, GeometryCase{16, 32}));

TEST(EndToEndInferenceExtra, TinyMobileWithDepthwiseMatches)
{
    Rng rng(43);
    const InferencePipeline pipe = buildPipeline(tinyMobile(), rng);
    Rng data_rng(8);
    Tensor3 input(3, 16, 16);
    input.fillRandom(data_rng);
    const Tensor3 golden = runGolden(pipe, input);
    const PipelineRunStats run = runSystolic(pipe, input, 32, 8);
    EXPECT_TRUE(run.output == golden);
}

TEST(EndToEndInferenceExtra, TinyResWithStridesMatches)
{
    Rng rng(44);
    const InferencePipeline pipe = buildPipeline(tinyRes(), rng);
    Rng data_rng(9);
    Tensor3 input(3, 12, 12);
    input.fillRandom(data_rng);
    const Tensor3 golden = runGolden(pipe, input);
    const PipelineRunStats run = runSystolic(pipe, input, 48, 8);
    EXPECT_TRUE(run.output == golden);
}

TEST(EndToEndInferenceExtra, OutputShapeIsClassVector)
{
    Rng rng(45);
    const InferencePipeline pipe = buildPipeline(tinyVgg(), rng);
    Rng data_rng(10);
    Tensor3 input(3, 16, 16);
    input.fillRandom(data_rng);
    const Tensor3 out = runGolden(pipe, input);
    EXPECT_EQ(out.channels(), 10);
    EXPECT_EQ(out.height(), 1);
    EXPECT_EQ(out.width(), 1);
}

TEST(EndToEndInferenceExtra, DifferentSeedsDiffer)
{
    Rng rng_a(1), rng_b(2);
    const InferencePipeline pa = buildPipeline(tinyVgg(), rng_a);
    const InferencePipeline pb = buildPipeline(tinyVgg(), rng_b);
    Rng data_rng(3);
    Tensor3 input(3, 16, 16);
    input.fillRandom(data_rng);
    EXPECT_FALSE(runGolden(pa, input) == runGolden(pb, input));
}

TEST(PipelineDeath, ShapeBreakIsRejected)
{
    dnn::Network net;
    net.name = "broken";
    net.layers = {
        dnn::conv("a", 3, 16, 8, 3),
        dnn::conv("b", 16, 16, 8, 3), // channel mismatch: 8 != 16
    };
    Rng rng(1);
    EXPECT_DEATH((void)buildPipeline(net, rng), "shape break");
}

} // namespace
} // namespace functional
} // namespace supernpu
