/**
 * @file
 * Cross-module integration tests: the full estimate -> simulate ->
 * power pipeline reproducing the paper's headline numbers, and the
 * jsim-vs-cell-library consistency checks.
 */

#include <gtest/gtest.h>

#include "dnn/networks.hh"
#include "jsim/cells.hh"
#include "npusim/batch.hh"
#include "npusim/sim.hh"
#include "power/power.hh"
#include "scalesim/tpu.hh"

namespace supernpu {
namespace {

using estimator::NpuConfig;
using estimator::NpuEstimate;
using estimator::NpuEstimator;

/** Fixture building the full evaluation pipeline once. */
class EndToEnd : public ::testing::Test
{
  protected:
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib{dev};
    NpuEstimator estimator{lib};
    scalesim::TpuConfig tpuConfig;
    scalesim::TpuSimulator tpu{tpuConfig};
    std::vector<dnn::Network> nets = dnn::evaluationWorkloads();

    /** TPU average effective performance at Table II batches. */
    double
    tpuAverage()
    {
        double total = 0.0;
        for (const auto &net : nets) {
            const int batch = npusim::maxBatchUnified(
                tpuConfig.unifiedBufferBytes, net);
            total += tpu.run(net, batch).effectiveMacPerSec();
        }
        return total / (double)nets.size();
    }

    /** SFQ-NPU average effective performance at Table II batches. */
    double
    npuAverage(const NpuConfig &config)
    {
        const NpuEstimate est = estimator.estimate(config);
        npusim::NpuSimulator sim(est);
        double total = 0.0;
        for (const auto &net : nets) {
            const int batch = npusim::maxBatch(config, est, net);
            total += sim.run(net, batch).effectiveMacPerSec();
        }
        return total / (double)nets.size();
    }
};

/**
 * The paper's headline (Fig. 23): Baseline ~0.4x the TPU; SuperNPU
 * ~23x; the intermediate steps land in between, in order.
 */
TEST_F(EndToEnd, FigTwentyThreeSpeedupLadder)
{
    const double tpu_perf = tpuAverage();
    ASSERT_GT(tpu_perf, 0.0);

    const double base = npuAverage(NpuConfig::baseline()) / tpu_perf;
    const double buffer = npuAverage(NpuConfig::bufferOpt()) / tpu_perf;
    const double resource =
        npuAverage(NpuConfig::resourceOpt()) / tpu_perf;
    const double super = npuAverage(NpuConfig::superNpu()) / tpu_perf;

    // Paper: 0.4x -> 7.7x -> 17.3x -> 23x. Bands keep the shape.
    EXPECT_GT(base, 0.2);
    EXPECT_LT(base, 0.8);
    EXPECT_GT(buffer, 5.0);
    EXPECT_LT(buffer, 14.0);
    EXPECT_GT(resource, buffer);
    EXPECT_GT(super, resource);
    EXPECT_GT(super, 15.0);
    EXPECT_LT(super, 35.0);
}

TEST_F(EndToEnd, MobileNetIsTheBiggestWinner)
{
    const NpuConfig config = NpuConfig::superNpu();
    const NpuEstimate est = estimator.estimate(config);
    npusim::NpuSimulator sim(est);

    double best_speedup = 0.0;
    std::string best_net;
    for (const auto &net : nets) {
        const int tpu_batch = npusim::maxBatchUnified(
            tpuConfig.unifiedBufferBytes, net);
        const double tpu_perf =
            tpu.run(net, tpu_batch).effectiveMacPerSec();
        const int batch = npusim::maxBatch(config, est, net);
        const double speedup =
            sim.run(net, batch).effectiveMacPerSec() / tpu_perf;
        if (speedup > best_speedup) {
            best_speedup = speedup;
            best_net = net.name;
        }
    }
    // Fig. 23: MobileNet's ~42x is the largest column.
    EXPECT_EQ(best_net, "MobileNet");
    EXPECT_GT(best_speedup, 30.0);
}

TEST_F(EndToEnd, EveryWorkloadGainsAtLeastFourX)
{
    // Paper: "SuperNPU boosts all workloads over 10 times"; our
    // reproduction keeps a conservative floor on the same claim.
    const NpuConfig config = NpuConfig::superNpu();
    const NpuEstimate est = estimator.estimate(config);
    npusim::NpuSimulator sim(est);
    for (const auto &net : nets) {
        const int tpu_batch = npusim::maxBatchUnified(
            tpuConfig.unifiedBufferBytes, net);
        const double tpu_perf =
            tpu.run(net, tpu_batch).effectiveMacPerSec();
        const int batch = npusim::maxBatch(config, est, net);
        const double speedup =
            sim.run(net, batch).effectiveMacPerSec() / tpu_perf;
        EXPECT_GT(speedup, 4.0) << net.name;
    }
}

TEST_F(EndToEnd, BaselineEffectiveBelowOnePercentOfPeak)
{
    // Section V-A: the Baseline's effective performance is below
    // 0.2 % of its 3.4 PMAC/s peak on average.
    const NpuEstimate est = estimator.estimate(NpuConfig::baseline());
    npusim::NpuSimulator sim(est);
    double util = 0.0;
    for (const auto &net : nets) {
        util += sim.run(net, 1).peUtilization(
            est.config.peCount());
    }
    EXPECT_LT(util / (double)nets.size(), 0.01);
}

TEST_F(EndToEnd, SimulatorAndEstimatorAgreeOnFrequency)
{
    const NpuEstimate est = estimator.estimate(NpuConfig::superNpu());
    npusim::NpuSimulator sim(est);
    const auto run = sim.run(nets[0], 1);
    EXPECT_DOUBLE_EQ(run.frequencyGhz, est.frequencyGhz);
}

/**
 * The jsim analog simulation and the cell library tell one story:
 * a JTL stage's measured propagation delay is comparable to the
 * library's JTL cell delay.
 */
TEST(CrossCheck, JsimJtlDelayMatchesLibraryOrder)
{
    jsim::DeviceParams params;
    jsim::Circuit circuit;
    const jsim::JtlChain chain =
        jsim::appendJtl(circuit, params, 10, "J");
    jsim::attachPulseInput(circuit, params, chain.input, {50e-12});
    jsim::TransientConfig config;
    config.duration = 150e-12;
    jsim::TransientSimulator sim(circuit, config);
    const auto result = sim.run();
    const double per_stage =
        jsim::propagationDelay(result, chain.junctionIndices.front(),
                               chain.junctionIndices.back()) /
        9.0 * 1e12; // ps

    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    const double library_jtl = lib.gate(sfq::GateKind::JTL).delay;
    // Same order of magnitude (the library value includes layout
    // margins the idealized netlist does not).
    EXPECT_GT(per_stage, library_jtl / 3.0);
    EXPECT_LT(per_stage, library_jtl * 5.0);
}

/**
 * The jsim switching energy per junction matches the device
 * config's Ic * Phi0 rule used by the estimator.
 */
TEST(CrossCheck, SwitchEnergyRuleConsistent)
{
    jsim::DeviceParams params;
    sfq::DeviceConfig dev;
    dev.unitCriticalCurrent = params.unitIc;
    EXPECT_NEAR(dev.energyPerJjSwitch(), params.unitIc * jsim::phi0,
                1e-25);
}

TEST_F(EndToEnd, DramTrafficShrinksWithOptimizations)
{
    // The optimized memory hierarchy exists to cut off-chip traffic
    // per inference.
    const dnn::Network net = dnn::makeResNet50();
    const NpuEstimate base = estimator.estimate(NpuConfig::baseline());
    const NpuEstimate super = estimator.estimate(NpuConfig::superNpu());
    npusim::NpuSimulator sim_b(base), sim_s(super);
    const auto rb = sim_b.run(net, 1);
    const auto rs = sim_s.run(net, 30);
    const double per_image_base = (double)rb.dramBytes;
    const double per_image_super = (double)rs.dramBytes / 30.0;
    EXPECT_LT(per_image_super, per_image_base);
}

TEST_F(EndToEnd, PowerPipelineRunsForAllConfigs)
{
    for (const NpuConfig &config :
         {NpuConfig::baseline(), NpuConfig::bufferOpt(),
          NpuConfig::resourceOpt(), NpuConfig::superNpu()}) {
        const NpuEstimate est = estimator.estimate(config);
        npusim::NpuSimulator sim(est);
        const auto run = sim.run(nets[4], 1); // ResNet50
        const power::PowerReport report = power::analyze(est, run);
        EXPECT_GT(report.chipW(), 0.0) << config.name;
        EXPECT_GT(report.coolingW(), report.chipW()) << config.name;
    }
}

} // namespace
} // namespace supernpu
