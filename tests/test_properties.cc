/**
 * @file
 * Property-based invariant sweeps across the stack: randomized and
 * enumerated layer shapes, architecture geometries, and device
 * points, each checked against invariants that must hold for *every*
 * instance (conservation, monotonicity, accounting closure).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/units.hh"
#include "dnn/networks.hh"
#include "estimator/buffer_model.hh"
#include "estimator/npu_estimator.hh"
#include "estimator/pe_model.hh"
#include "npusim/batch.hh"
#include "npusim/sim.hh"
#include "scalesim/tpu.hh"

namespace supernpu {
namespace {

using estimator::NpuConfig;
using estimator::NpuEstimate;
using estimator::NpuEstimator;

/** Deterministically generate a valid random conv layer. */
dnn::Layer
randomLayer(Rng &rng, int index)
{
    const int kernel = (int)rng.uniformInt(1, 7);
    const int stride = (int)rng.uniformInt(1, 2);
    const int in_hw =
        std::max<int>(kernel + 2, (int)rng.uniformInt(6, 64));
    dnn::Layer layer = dnn::conv(
        "rand" + std::to_string(index), (int)rng.uniformInt(1, 512),
        in_hw, (int)rng.uniformInt(1, 512), kernel, stride);
    return layer;
}

// --- simulator invariants over random layers ---------------------------

class RandomLayerInvariants : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomLayerInvariants, ConservationAndClosure)
{
    Rng rng(0xFACEull + (std::uint64_t)GetParam());
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    NpuEstimator estimator(lib);
    const NpuConfig config = GetParam() % 2 ? NpuConfig::superNpu()
                                            : NpuConfig::baseline();
    const NpuEstimate est = estimator.estimate(config);
    npusim::NpuSimulator sim(est);

    for (int i = 0; i < 8; ++i) {
        const dnn::Layer layer = randomLayer(rng, i);
        const int batch = (int)rng.uniformInt(1, 8);
        const npusim::LayerResult res =
            sim.simulateLayer(layer, batch);

        // MAC conservation.
        EXPECT_EQ(res.macOps,
                  layer.macCount() * (std::uint64_t)batch)
            << layer.name;
        // Prep accounting closes.
        EXPECT_EQ(res.prep.total(), res.prepCycles) << layer.name;
        // Work exists and the array is never over-utilized.
        EXPECT_GT(res.totalCycles(), 0ull) << layer.name;
        EXPECT_LE((double)res.macOps,
                  (double)res.totalCycles() * config.peCount())
            << layer.name;
        // Off-chip traffic includes at least the weights.
        EXPECT_GE(res.dramBytes, layer.weightBytes()) << layer.name;
        // Mapping count follows the fold arithmetic.
        const std::uint64_t folds_r =
            (layer.weightsPerFilter() + config.peHeight - 1) /
            config.peHeight;
        const std::uint64_t per_map =
            (std::uint64_t)config.peWidth * config.regsPerPe;
        const std::uint64_t folds_c =
            ((std::uint64_t)layer.outChannels + per_map - 1) / per_map;
        EXPECT_EQ(res.weightMappings, folds_r * folds_c) << layer.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLayerInvariants,
                         ::testing::Range(0, 10));

// --- batch monotonicity --------------------------------------------------

TEST(Monotonicity, ThroughputNeverDropsWithBatchOnSuperNpu)
{
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    NpuEstimator estimator(lib);
    const NpuConfig config = NpuConfig::superNpu();
    const NpuEstimate est = estimator.estimate(config);
    npusim::NpuSimulator sim(est);

    for (const auto &net :
         {dnn::makeResNet50(), dnn::makeGoogLeNet()}) {
        double prev = 0.0;
        for (int batch : {1, 2, 4, 8, 16, 30}) {
            const double perf =
                sim.run(net, batch).effectiveMacPerSec();
            EXPECT_GE(perf, prev * 0.999)
                << net.name << " batch " << batch;
            prev = perf;
        }
    }
}

TEST(Monotonicity, BandwidthNeverHurts)
{
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    NpuEstimator estimator(lib);
    const dnn::Network net = dnn::makeVgg16();
    double prev = 0.0;
    for (double bw : {100e9, 300e9, 900e9}) {
        NpuConfig config = NpuConfig::superNpu();
        config.memoryBandwidth = bw;
        npusim::NpuSimulator sim(estimator.estimate(config));
        const double perf = sim.run(net, 7).effectiveMacPerSec();
        EXPECT_GE(perf, prev) << "bw " << bw;
        prev = perf;
    }
}

TEST(Monotonicity, WeightPrefetchNeverHurts)
{
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    NpuEstimator estimator(lib);
    NpuConfig plain = NpuConfig::superNpu();
    NpuConfig pref = NpuConfig::superNpu();
    pref.weightDoubleBuffering = true;
    npusim::NpuSimulator sim_plain(estimator.estimate(plain));
    npusim::NpuSimulator sim_pref(estimator.estimate(pref));
    for (const auto &net : dnn::evaluationWorkloads()) {
        const double a = sim_plain.run(net, 4).effectiveMacPerSec();
        const double b = sim_pref.run(net, 4).effectiveMacPerSec();
        EXPECT_GE(b, a * 0.999) << net.name;
    }
}

// --- estimator sweeps ------------------------------------------------------

class GeometrySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(GeometrySweep, EstimatesAreConsistent)
{
    const int width = GetParam();
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    NpuEstimator estimator(lib);

    NpuConfig config = NpuConfig::bufferOpt();
    config.peWidth = width;
    config.outputDivision = std::max(1, 64 * (256 / width));
    config.weightBufferBytes = (std::uint64_t)width * 256;
    const NpuEstimate est = estimator.estimate(config);

    // Clock is width-independent (PE-limited), peak scales linearly.
    EXPECT_NEAR(est.frequencyGhz, 52.6, 0.5) << width;
    EXPECT_NEAR(est.peakMacPerSec,
                (double)width * 256.0 * est.frequencyGhz * 1e9,
                1e9)
        << width;
    // Roll-up closure.
    double area = 0.0;
    for (const auto &unit : est.units)
        area += unit.areaMm2;
    EXPECT_NEAR(area, est.areaMm2, 1e-9) << width;
}

INSTANTIATE_TEST_SUITE_P(Widths, GeometrySweep,
                         ::testing::Values(16, 32, 64, 128, 256));

class DivisionSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DivisionSweep, AreaGrowsMonotonicallyWithDivision)
{
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    const int division = GetParam();
    estimator::BufferModel fine(lib, 12 * units::MiB, 256, 8, division);
    estimator::BufferModel coarse(lib, 12 * units::MiB, 256, 8,
                                  std::max(1, division / 4));
    EXPECT_GE(fine.jjCount(), coarse.jjCount());
    EXPECT_GE(fine.area(), coarse.area());
    EXPECT_LE(fine.chunkLengthEntries(), coarse.chunkLengthEntries());
}

INSTANTIATE_TEST_SUITE_P(Divisions, DivisionSweep,
                         ::testing::Values(4, 16, 64, 256, 1024, 4096));

// --- device sweeps ----------------------------------------------------------

class ProcessSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ProcessSweep, FrequencyFollowsScalingLaw)
{
    const double feature = GetParam();
    sfq::DeviceConfig coarse;
    sfq::DeviceConfig scaled;
    scaled.featureSizeUm = feature;
    sfq::CellLibrary lib_c(coarse), lib_s(scaled);
    estimator::PeModel pe_c(lib_c, 8, 1), pe_s(lib_s, 8, 1);
    const double expected_ratio =
        1.0 / std::max(feature, 0.2); // floor at 0.2 um
    EXPECT_NEAR(pe_s.frequencyGhz() / pe_c.frequencyGhz(),
                expected_ratio, 0.02 * expected_ratio);
    // Energies do not scale with the feature size in this model.
    EXPECT_DOUBLE_EQ(pe_s.macEnergy(), pe_c.macEnergy());
}

INSTANTIATE_TEST_SUITE_P(Features, ProcessSweep,
                         ::testing::Values(1.0, 0.8, 0.5, 0.35, 0.2,
                                           0.1));

// --- batch solver properties -------------------------------------------------

TEST(BatchSolver, MoreBufferNeverMeansSmallerBatch)
{
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    NpuEstimator estimator(lib);
    for (const auto &net : dnn::evaluationWorkloads()) {
        int prev = 0;
        for (std::uint64_t mb : {8ull, 16ull, 32ull, 64ull}) {
            NpuConfig config = NpuConfig::superNpu();
            config.ifmapBufferBytes = mb * units::MiB;
            config.outputBufferBytes = mb * units::MiB;
            const NpuEstimate est = estimator.estimate(config);
            const int batch = npusim::maxBatch(config, est, net);
            EXPECT_GE(batch, prev) << net.name << " " << mb << " MiB";
            prev = batch;
        }
    }
}

TEST(BatchSolver, SolvedBatchActuallyFits)
{
    // At the solved batch, no layer's working set exceeds its usable
    // output capacity (the solver's defining property).
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    NpuEstimator estimator(lib);
    const NpuConfig config = NpuConfig::superNpu();
    const NpuEstimate est = estimator.estimate(config);
    for (const auto &net : dnn::evaluationWorkloads()) {
        const int batch = npusim::maxBatch(config, est, net);
        for (const auto &layer : net.layers) {
            const std::uint64_t usable =
                npusim::usableOutputBytes(config, layer);
            const std::uint64_t need =
                layer.kind == dnn::LayerKind::DepthwiseConv
                    ? layer.ofmapBytes() /
                          (std::uint64_t)layer.outChannels
                    : layer.ofmapBytes();
            EXPECT_LE(need * (std::uint64_t)batch, usable)
                << net.name << " / " << layer.name;
        }
    }
}

// --- TPU model properties ------------------------------------------------------

TEST(TpuProperties, SpeedupsAreFiniteAndPositive)
{
    scalesim::TpuConfig config;
    scalesim::TpuSimulator tpu(config);
    for (const auto &net : dnn::evaluationWorkloads()) {
        for (int batch : {1, 4, 16}) {
            const auto run = tpu.run(net, batch);
            EXPECT_GT(run.effectiveMacPerSec(), 0.0) << net.name;
            EXPECT_LE(run.effectiveMacPerSec(),
                      config.peakMacPerSec() * 1.0001)
                << net.name;
        }
    }
}

} // namespace
} // namespace supernpu
