/**
 * @file
 * Serving-resilience tests: the zero-cost guarantee (an empty fault
 * schedule leaves serving byte-identical), deterministic retry
 * sequencing, degraded dispatch never routing to quarantined chips,
 * checkpoint/restart conservation, retry give-up, and the
 * availability/goodput accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dnn/parser.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "reliability/fault_model.hh"
#include "serving/simulator.hh"

namespace supernpu {
namespace serving {
namespace {

class ResilienceFixture : public ::testing::Test
{
  protected:
    ResilienceFixture()
        : net(dnn::parseNetwork("network ResilTest\n"
                                "conv c1  3 16 16 3 1 1\n"
                                "conv c2 16 16 16 3 1 1\n")),
          config(estimator::NpuConfig::superNpu()),
          estimate(estimator::NpuEstimator(lib).estimate(config)),
          solver_max(npusim::maxBatch(config, estimate, net)),
          service(estimate, net)
    {
    }

    /** A 2-chip config at 60% of aggregate capacity. */
    ServingConfig
    baseConfig() const
    {
        ServingConfig serving;
        serving.chips = 2;
        serving.arrival.ratePerSec =
            0.6 * 2.0 * service.peakRps(solver_max);
        serving.batching.maxBatch = solver_max;
        serving.requests = 3000;
        // Resilience timescales follow the tiny network's service
        // time, as a deployment would tune them to the workload.
        serving.resilience.detectLatencySec =
            0.25 * service.batchSeconds(solver_max);
        serving.resilience.backoffBaseSec =
            service.batchSeconds(solver_max);
        serving.resilience.checkpointIntervalSec =
            0.25 * service.batchSeconds(solver_max);
        return serving;
    }

    /** Makespan of the base config, for rate scaling. */
    double
    baseMakespan() const
    {
        const ServingConfig serving = baseConfig();
        return (double)serving.requests /
               serving.arrival.ratePerSec;
    }

    /** Pulse drops across both chips, paced to the run. */
    reliability::FaultSchedule
    dropSchedule(double per_chip_count) const
    {
        reliability::FaultScheduleConfig faults;
        faults.chips = 2;
        faults.horizonSec = baseMakespan();
        faults.pulseDropRatePerSec =
            per_chip_count / faults.horizonSec;
        return reliability::FaultSchedule::generate(faults);
    }

    /** One permanent flux trap on chip 0 at t = 0. */
    reliability::FaultSchedule
    trapChipZero() const
    {
        reliability::FaultScheduleConfig faults;
        faults.chips = 2;
        reliability::FaultEvent event;
        event.kind = reliability::FaultKind::FluxTrap;
        event.magnitude = faults.fluxTrapDerate;
        return reliability::FaultSchedule::fromEvents(faults, {event});
    }

    sfq::DeviceConfig dev;
    sfq::CellLibrary lib{dev};
    dnn::Network net;
    estimator::NpuConfig config;
    estimator::NpuEstimate estimate;
    int solver_max;
    BatchServiceModel service;
};

TEST_F(ResilienceFixture, EmptyScheduleIsByteIdenticalToBaseline)
{
    // The zero-cost guarantee: arming a recovery policy without any
    // faults must not perturb a single event — same seq numbering,
    // same batches, bit-identical metrics.
    ServingConfig plain = baseConfig();
    const auto baseline = ServingSimulator(service, plain).run();

    ServingConfig armed = baseConfig();
    armed.resilience.recovery = RecoveryPolicy::RetryBackoff;
    armed.resilience.checkpointRestart = true;
    const auto report = ServingSimulator(service, armed).run();

    EXPECT_FALSE(report.resilienceActive);
    EXPECT_DOUBLE_EQ(report.makespanSec, baseline.makespanSec);
    EXPECT_DOUBLE_EQ(report.latencyP99, baseline.latencyP99);
    EXPECT_DOUBLE_EQ(report.latencyMax, baseline.latencyMax);
    EXPECT_DOUBLE_EQ(report.throughputRps, baseline.throughputRps);
    EXPECT_EQ(report.batchesLaunched, baseline.batchesLaunched);
    EXPECT_EQ(report.faultsInjected, 0u);
    EXPECT_EQ(report.failedRequests, 0u);
    EXPECT_DOUBLE_EQ(report.availability, 1.0);
}

TEST_F(ResilienceFixture, RetrySequencingIsDeterministic)
{
    ServingConfig serving = baseConfig();
    serving.faults = dropSchedule(40.0);
    serving.resilience.recovery = RecoveryPolicy::RetryBackoff;
    const auto a = ServingSimulator(service, serving).run();
    const auto b = ServingSimulator(service, serving).run();
    EXPECT_TRUE(a.resilienceActive);
    EXPECT_GT(a.batchesKilled, 0u);
    EXPECT_GT(a.retriesTotal, 0u);
    EXPECT_EQ(a.batchesKilled, b.batchesKilled);
    EXPECT_EQ(a.retriesTotal, b.retriesTotal);
    EXPECT_EQ(a.failedRequests, b.failedRequests);
    EXPECT_DOUBLE_EQ(a.makespanSec, b.makespanSec);
    EXPECT_DOUBLE_EQ(a.latencyP99, b.latencyP99);
}

TEST_F(ResilienceFixture, DegradedDispatchShunsQuarantinedChips)
{
    ServingConfig serving = baseConfig();
    serving.faults = trapChipZero();
    serving.resilience.recovery = RecoveryPolicy::DegradedDispatch;
    // Quarantine lands before the first request can arrive.
    serving.resilience.detectLatencySec = 1e-12;
    const auto report = ServingSimulator(service, serving).run();
    ASSERT_EQ(report.perChipBatches.size(), 2u);
    EXPECT_EQ(report.perChipBatches[0], 0u);
    EXPECT_GT(report.perChipBatches[1], 0u);
    EXPECT_EQ(report.completed, serving.requests);
    EXPECT_EQ(report.failedRequests, 0u);
    // Writing off half the fleet halves availability.
    EXPECT_LT(report.availability, 0.55);
}

TEST_F(ResilienceFixture, CheckpointRestartConservesRequests)
{
    ServingConfig serving = baseConfig();
    serving.faults = dropSchedule(40.0);
    serving.resilience.recovery = RecoveryPolicy::RetryBackoff;
    serving.resilience.checkpointRestart = true;
    const auto report = ServingSimulator(service, serving).run();
    EXPECT_EQ(report.completed, serving.requests);
    EXPECT_EQ(report.generated, serving.requests);
    EXPECT_GT(report.restarts, 0u);
    // Restarted batches never re-enter the queue.
    EXPECT_EQ(report.retriesTotal, 0u);
    // A corrupted-then-restarted batch stretches the tail past the
    // clean run's.
    const auto clean =
        ServingSimulator(service, baseConfig()).run();
    EXPECT_GT(report.latencyMax, clean.latencyMax);
}

TEST_F(ResilienceFixture, RequestsGiveUpPastTheRetryBudget)
{
    ServingConfig serving = baseConfig();
    serving.faults = dropSchedule(40.0);
    serving.resilience.recovery = RecoveryPolicy::RetryBackoff;
    serving.resilience.maxRetries = 0;
    const auto report = ServingSimulator(service, serving).run();
    EXPECT_GT(report.batchesKilled, 0u);
    // Zero budget: every killed batch's requests fail immediately.
    EXPECT_EQ(report.retriesTotal, 0u);
    EXPECT_GT(report.failedRequests, 0u);
    EXPECT_EQ(report.completed, serving.requests);
    EXPECT_LT(report.goodputRps, report.throughputRps);
}

TEST_F(ResilienceFixture, NoRecoveryShipsCorruptedBatches)
{
    ServingConfig serving = baseConfig();
    serving.faults = dropSchedule(40.0);
    const auto report = ServingSimulator(service, serving).run();
    EXPECT_EQ(report.recovery, "none");
    EXPECT_EQ(report.batchesKilled, 0u);
    EXPECT_GT(report.failedRequests, 0u);
    EXPECT_EQ(report.completed, serving.requests);
}

TEST_F(ResilienceFixture, GlitchStallIsNotCheckpointableProgress)
{
    // Regression: a link-glitch stall stretches the wall clock but
    // computes nothing, so a later checkpoint-restart must not count
    // the stall as preserved progress. One chip, one request, hand
    // placed faults — the completion time is exact.
    ServingConfig serving;
    serving.chips = 1;
    serving.requests = 1;
    serving.arrival.kind = ArrivalKind::ClosedLoop;
    serving.arrival.clients = 1;
    serving.batching.maxBatch = 1;
    serving.resilience.recovery = RecoveryPolicy::RetryBackoff;
    serving.resilience.checkpointRestart = true;

    const double s = service.batchSeconds(1);
    serving.resilience.detectLatencySec = 0.05 * s;
    serving.resilience.checkpointIntervalSec = 0.25 * s;

    reliability::FaultScheduleConfig faults;
    faults.chips = 1;
    reliability::FaultEvent glitch;
    glitch.kind = reliability::FaultKind::LinkGlitch;
    glitch.timeSec = 0.2 * s;
    glitch.magnitude = 0.2 * s;
    reliability::FaultEvent drop;
    drop.kind = reliability::FaultKind::PulseDrop;
    drop.timeSec = 0.5 * s;
    serving.faults =
        reliability::FaultSchedule::fromEvents(faults, {glitch, drop});

    const auto report = ServingSimulator(service, serving).run();

    // Launch at 0; the glitch pushes completion to 1.2s; corruption
    // at 0.5s has computed only 0.5s - 0.2s = 0.3s of real work, so
    // the restart resumes from the 0.25s checkpoint (not 0.5s) and
    // finishes at detect (0.55s) + remaining (0.75s) = 1.3s.
    EXPECT_EQ(report.completed, 1u);
    EXPECT_EQ(report.restarts, 1u);
    EXPECT_EQ(report.batchesKilled, 1u);
    EXPECT_EQ(report.glitchesAbsorbed, 1u);
    EXPECT_NEAR(report.latencyMax, 1.3 * s, 1e-9 * s);
}

TEST_F(ResilienceFixture, GlitchAfterCorruptionStillCounts)
{
    // Only stall that elapsed *before* the corruption is excluded
    // from progress; the restart wipes any later glitch state. Here
    // the glitch lands after the drop, so the full 0.5s of wall
    // clock is computed progress and the 0.25s-interval checkpoint
    // preserves 0.5s: completion at detect (0.55s) + 0.5s = 1.05s.
    ServingConfig serving;
    serving.chips = 1;
    serving.requests = 1;
    serving.arrival.kind = ArrivalKind::ClosedLoop;
    serving.arrival.clients = 1;
    serving.batching.maxBatch = 1;
    serving.resilience.recovery = RecoveryPolicy::RetryBackoff;
    serving.resilience.checkpointRestart = true;

    const double s = service.batchSeconds(1);
    serving.resilience.detectLatencySec = 0.05 * s;
    serving.resilience.checkpointIntervalSec = 0.25 * s;

    reliability::FaultScheduleConfig faults;
    faults.chips = 1;
    reliability::FaultEvent drop;
    drop.kind = reliability::FaultKind::PulseDrop;
    drop.timeSec = 0.5 * s;
    reliability::FaultEvent glitch;
    glitch.kind = reliability::FaultKind::LinkGlitch;
    glitch.timeSec = 0.52 * s;
    glitch.magnitude = 0.2 * s;
    serving.faults =
        reliability::FaultSchedule::fromEvents(faults, {drop, glitch});

    const auto report = ServingSimulator(service, serving).run();
    EXPECT_EQ(report.restarts, 1u);
    EXPECT_NEAR(report.latencyMax, 1.05 * s, 1e-9 * s);
}

TEST_F(ResilienceFixture, AllChipsQuarantinedIsFatal)
{
    // A 1-chip fleet under DegradedDispatch loses its only chip to a
    // flux trap: dispatch has nowhere healthy to go and must say so
    // loudly instead of silently serving from known-bad hardware.
    ServingConfig serving = baseConfig();
    serving.chips = 1;
    serving.faults = [&] {
        reliability::FaultScheduleConfig faults;
        faults.chips = 1;
        reliability::FaultEvent event;
        event.kind = reliability::FaultKind::FluxTrap;
        event.magnitude = faults.fluxTrapDerate;
        return reliability::FaultSchedule::fromEvents(faults, {event});
    }();
    serving.resilience.recovery = RecoveryPolicy::DegradedDispatch;
    serving.resilience.detectLatencySec = 1e-12;
    EXPECT_EXIT((void)ServingSimulator(service, serving).run(),
                ::testing::ExitedWithCode(1), "quarantined");
}

TEST_F(ResilienceFixture, PermanentTrapDegradesAvailability)
{
    ServingConfig serving = baseConfig();
    serving.faults = trapChipZero();
    serving.resilience.recovery = RecoveryPolicy::RetryBackoff;
    const auto report = ServingSimulator(service, serving).run();
    // Chip 0 runs on at the trap derate: available but slower, so
    // availability lands strictly between "half the fleet gone" and
    // "untouched".
    EXPECT_GT(report.availability, 0.5);
    EXPECT_LT(report.availability, 1.0);
    EXPECT_EQ(report.completed, serving.requests);
}

} // namespace
} // namespace serving
} // namespace supernpu
