/**
 * @file
 * Tests for the src/perf layer: the scoped profiler's semantics and
 * its disabled-path cost, the obs JSON reader, the auditPerf roll-up
 * invariants, the bench harness's deterministic BENCH JSON, and the
 * baseline comparison gates in both directions.
 */

#include <gtest/gtest.h>

#include "dnn/parser.hh"
#include "estimator/npu_estimator.hh"
#include "obs/audit.hh"
#include "obs/json_reader.hh"
#include "obs/ledger.hh"
#include "perf/bench_runner.hh"
#include "perf/profile.hh"
#include "serving/simulator.hh"

namespace supernpu {
namespace {

/** Restore a clean, disabled profiler around every test. */
class PerfTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        perf::setEnabled(false);
        perf::reset();
    }
    void TearDown() override
    {
        perf::setEnabled(false);
        perf::reset();
    }
};

TEST_F(PerfTest, DisabledRecordsNothing)
{
    perf::Counter &counter = perf::counter("test.disabled");
    counter.add(5);
    {
        perf::Scope scope("test.disabledScope");
    }
    const perf::Report report = perf::report();
    EXPECT_EQ(report.counterValue("test.disabled"), 0u);
    EXPECT_EQ(report.phase("test.disabledScope"), nullptr);
}

TEST_F(PerfTest, ScopesNestIntoPaths)
{
    perf::setEnabled(true);
    {
        perf::Scope outer("outer");
        {
            perf::Scope inner("inner");
        }
        {
            perf::Scope inner("inner");
        }
    }
    const perf::Report report = perf::report();
    const perf::PhaseStat *outer = report.phase("outer");
    const perf::PhaseStat *inner = report.phase("outer/inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->count, 1u);
    EXPECT_EQ(inner->count, 2u);
    // Child intervals are subintervals of the parent.
    EXPECT_LE(inner->ns, outer->ns);
    EXPECT_EQ(report.phase("inner"), nullptr);
}

TEST_F(PerfTest, CountersAccumulateAndReset)
{
    perf::setEnabled(true);
    perf::Counter &counter = perf::counter("test.counter");
    counter.add(3);
    counter.add(4);
    EXPECT_EQ(perf::report().counterValue("test.counter"), 7u);

    perf::reset();
    EXPECT_TRUE(perf::report().empty());
    // The registration (and the reference) survives reset.
    counter.add(2);
    EXPECT_EQ(perf::report().counterValue("test.counter"), 2u);
}

TEST_F(PerfTest, ReportIsNameSorted)
{
    perf::setEnabled(true);
    perf::counter("zeta").add(1);
    perf::counter("alpha").add(1);
    {
        perf::Scope b("bbb");
    }
    {
        perf::Scope a("aaa");
    }
    const perf::Report report = perf::report();
    ASSERT_EQ(report.counters.size(), 2u);
    EXPECT_EQ(report.counters[0].name, "alpha");
    EXPECT_EQ(report.counters[1].name, "zeta");
    ASSERT_EQ(report.phases.size(), 2u);
    EXPECT_EQ(report.phases[0].path, "aaa");
    EXPECT_EQ(report.phases[1].path, "bbb");
}

// The whole point of the design: when profiling is off, scopes and
// counters must stay so cheap the simulators can keep them inline.
// The bound is deliberately loose (sanitizer builds run this too) —
// it exists to catch an accidental always-on mutex or allocation,
// which would cost well over a microsecond per scope.
TEST_F(PerfTest, DisabledPathStaysCheap)
{
    perf::Counter &counter = perf::counter("test.hot");
    const int iterations = 500000;
    const std::uint64_t start = perf::nowNs();
    for (int i = 0; i < iterations; ++i) {
        perf::Scope scope("test.hotScope");
        counter.add(1);
    }
    const double sec = (double)(perf::nowNs() - start) * 1e-9;
    EXPECT_LT(sec, 2.0);
    EXPECT_EQ(perf::report().counterValue("test.hot"), 0u);
}

TEST_F(PerfTest, AuditPerfAcceptsRealNesting)
{
    perf::setEnabled(true);
    const std::uint64_t start = perf::nowNs();
    {
        perf::Scope outer("run");
        {
            perf::Scope inner("layer");
        }
        {
            perf::Scope inner("layer");
        }
    }
    const std::uint64_t wall = perf::nowNs() - start;
    const obs::AuditReport audit =
        obs::auditPerf(perf::report(), wall);
    EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST(AuditPerf, FlagsChildrenSummingPastParent)
{
    perf::Report report;
    report.phases.push_back({"run", 1, 100});
    report.phases.push_back({"run/layer", 3, 150});
    const obs::AuditReport audit = obs::auditPerf(report);
    ASSERT_FALSE(audit.ok());
    EXPECT_NE(audit.summary().find("childSum run"), std::string::npos);
}

TEST(AuditPerf, FlagsOrphanAndWallOverrun)
{
    perf::Report orphan;
    orphan.phases.push_back({"lost/child", 1, 10});
    EXPECT_FALSE(obs::auditPerf(orphan).ok());

    perf::Report over;
    over.phases.push_back({"run", 1, 2000});
    EXPECT_FALSE(obs::auditPerf(over, 1000).ok());
    EXPECT_TRUE(obs::auditPerf(over, 3000).ok());
}

TEST(PerfLedger, AddPerfReportBuildsSectionAndTable)
{
    perf::Report report;
    report.counters.push_back({"simCache.hits", 7});
    report.phases.push_back({"run", 2, 500});
    report.phases.push_back({"run/layer", 4, 300});

    obs::RunLedger ledger;
    obs::addPerfReport(ledger, report);
    const obs::Value *hits = ledger.find("perf", "simCache.hits");
    ASSERT_NE(hits, nullptr);
    EXPECT_EQ(hits->asInt(), 7u);
    const obs::RunLedger::Table *phases =
        ledger.findTable("perfPhases");
    ASSERT_NE(phases, nullptr);
    ASSERT_EQ(phases->rows.size(), 2u);
    EXPECT_EQ(phases->rows[1][0].asText(), "run/layer");
    EXPECT_EQ(phases->rows[1][2].asInt(), 300u);
}

// --- obs JSON reader -------------------------------------------------

TEST(JsonReader, ParsesNestedDocument)
{
    const std::string text = R"({
      "schema": "supernpu-bench-v1",
      "count": 42,
      "ratio": -1.5e2,
      "flag": true,
      "nothing": null,
      "text": "a\"b\\c\nA",
      "list": [1, 2, {"k": "v"}]
    })";
    std::string error;
    const auto doc = obs::parseJson(text, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->stringAt("schema"), "supernpu-bench-v1");
    EXPECT_EQ(doc->numberAt("count"), 42.0);
    EXPECT_EQ(doc->numberAt("ratio"), -150.0);
    EXPECT_EQ(doc->stringAt("text"), "a\"b\\c\nA");
    const obs::JsonValue *list = doc->find("list");
    ASSERT_NE(list, nullptr);
    ASSERT_TRUE(list->isArray());
    ASSERT_EQ(list->array.size(), 3u);
    EXPECT_EQ(list->array[2].stringAt("k"), "v");
    // Object member order is document order.
    EXPECT_EQ(doc->object.front().first, "schema");
}

TEST(JsonReader, RejectsMalformedDocuments)
{
    std::string error;
    EXPECT_FALSE(obs::parseJson("{\"a\": 1,}", &error).has_value());
    EXPECT_FALSE(obs::parseJson("{} trailing", &error).has_value());
    EXPECT_NE(error.find("byte"), std::string::npos);
    EXPECT_FALSE(obs::parseJson("\"unterminated", &error).has_value());
    EXPECT_FALSE(obs::parseJson("{\"a\": nope}", &error).has_value());
    EXPECT_FALSE(obs::parseJson("", &error).has_value());
}

TEST(JsonReader, RoundTripsWriterIntegers)
{
    // %.17g keeps every uint64 below 2^53 exact through the double
    // path — which is why bench metrics stay exactly comparable.
    const std::string text = "{\"v\": 483428375488}";
    const auto doc = obs::parseJson(text);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ((std::uint64_t)doc->numberAt("v"), 483428375488ull);
}

// --- bench harness ---------------------------------------------------

bench::BenchOptions
fastOptions()
{
    bench::BenchOptions options;
    options.suite = "smoke";
    options.repetitions = 1;
    options.warmups = 0;
    options.only = {"micro_kernels"};
    return options;
}

TEST(BenchHarness, DeterministicJsonAndSchema)
{
    const bench::BenchReport a = bench::runSuite(fastOptions());
    const bench::BenchReport b = bench::runSuite(fastOptions());
    const std::string ja = bench::benchJson(a, false);
    const std::string jb = bench::benchJson(b, false);
    EXPECT_EQ(ja, jb) << "no-timing BENCH JSON must be byte-stable";

    const auto doc = obs::parseJson(ja);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->stringAt("schema"), bench::kBenchSchema);
    const obs::JsonValue *cases = doc->find("cases");
    ASSERT_NE(cases, nullptr);
    ASSERT_EQ(cases->array.size(), 1u);
    EXPECT_EQ(cases->array[0].stringAt("name"), "micro_kernels");
    // The deterministic form carries no wall-clock fields.
    EXPECT_EQ(cases->array[0].find("timing"), nullptr);
    EXPECT_EQ(ja.find("wallSec"), std::string::npos);
    // The timed form does.
    const std::string timed = bench::benchJson(a, true);
    EXPECT_NE(timed.find("medianWallSec"), std::string::npos);
}

TEST(BenchHarness, RepetitionsKeepMetricsIdentical)
{
    // runSuite fatals if a case's metrics drift across repetitions;
    // running two reps of every smoke case is the determinism check.
    bench::BenchOptions options;
    options.suite = "smoke";
    options.repetitions = 2;
    options.warmups = 0;
    const bench::BenchReport report = bench::runSuite(options);
    EXPECT_EQ(report.cases.size(), 8u);
    for (const auto &c : report.cases) {
        EXPECT_GT(c.work, 0u) << c.name;
        EXPECT_GT(c.throughput, 0.0) << c.name;
        EXPECT_EQ(c.wallSec.size(), 2u) << c.name;
    }
}

TEST(BenchHarness, SuiteCaseNamesMatchRegistry)
{
    const auto names = bench::suiteCaseNames("smoke");
    ASSERT_EQ(names.size(), 8u);
    EXPECT_EQ(names[0], "micro_kernels");
    EXPECT_EQ(names[4], "pipeline_scaling");
    EXPECT_EQ(names[5], "shard_scaling");
    EXPECT_EQ(names[6], "planner_search");
    EXPECT_EQ(names[7], "check_fuzz");
}

TEST(BenchHarness, TimedBaselineGateFailsOnSlowdown)
{
    const bench::BenchReport current = bench::runSuite(fastOptions());

    // A synthetic timed baseline 3x faster than the current run:
    // slowdown is exactly 200%, with no wall-clock noise involved.
    bench::BenchReport faster = current;
    faster.cases[0].throughput = current.cases[0].throughput * 3.0;
    const std::string baseline = bench::benchJson(faster, true);

    const bench::CompareOutcome fail =
        bench::compareToBaseline(current, baseline, 50.0);
    ASSERT_EQ(fail.deltas.size(), 1u);
    EXPECT_FALSE(fail.ok);
    EXPECT_TRUE(fail.deltas[0].regressed);
    EXPECT_NEAR(fail.deltas[0].slowdownPct, 200.0, 1e-6);

    // The identical report as its own baseline always passes.
    const bench::CompareOutcome pass = bench::compareToBaseline(
        current, bench::benchJson(current, true), 0.5);
    EXPECT_TRUE(pass.ok);
    EXPECT_FALSE(pass.deltas[0].regressed);
}

TEST(BenchHarness, InjectSlowdownTripsTheGate)
{
    bench::BenchOptions honest_options = fastOptions();
    honest_options.warmups = 1;
    const bench::BenchReport honest = bench::runSuite(honest_options);
    const std::string baseline = bench::benchJson(honest, true);

    bench::BenchOptions slow = honest_options;
    slow.injectSlowdownPct = 900.0;
    const bench::BenchReport injected = bench::runSuite(slow);

    // The re-run would need to be naturally 4x faster than the
    // warmed-up baseline run for a 10x injected slowdown to slip
    // under a 150% threshold — wall-clock noise is far smaller.
    const bench::CompareOutcome outcome =
        bench::compareToBaseline(injected, baseline, 150.0);
    EXPECT_FALSE(outcome.ok);
    EXPECT_TRUE(outcome.deltas[0].regressed);
}

TEST(BenchHarness, UntimedBaselineGatesOnExactMetrics)
{
    const bench::BenchReport current = bench::runSuite(fastOptions());
    const std::string untimed = bench::benchJson(current, false);

    const bench::CompareOutcome same =
        bench::compareToBaseline(current, untimed, 10.0);
    EXPECT_TRUE(same.ok);
    EXPECT_TRUE(same.deltas[0].comparable);
    EXPECT_EQ(same.deltas[0].baselineThroughput, 0.0);

    bench::BenchReport drifted = current;
    ASSERT_FALSE(drifted.cases[0].metrics.empty());
    drifted.cases[0].metrics[0].value += 1;
    const bench::CompareOutcome fail =
        bench::compareToBaseline(drifted, untimed, 10.0);
    EXPECT_FALSE(fail.ok);
    EXPECT_TRUE(fail.deltas[0].regressed);
    EXPECT_NE(fail.deltas[0].note.find("drifted"), std::string::npos);
}

TEST(BenchHarness, MissingAndUnknownBaselineCases)
{
    const bench::BenchReport current = bench::runSuite(fastOptions());

    // A case absent from the baseline is noted, never a failure.
    bench::BenchReport renamed = current;
    renamed.cases[0].name = "somebody_else";
    const bench::CompareOutcome missing = bench::compareToBaseline(
        current, bench::benchJson(renamed, true), 10.0);
    EXPECT_TRUE(missing.ok);
    EXPECT_FALSE(missing.deltas[0].comparable);

    // A baseline with the wrong schema is an error, not a pass.
    const bench::CompareOutcome bad = bench::compareToBaseline(
        current, "{\"schema\": \"someone-elses-v9\", \"cases\": []}",
        10.0);
    EXPECT_FALSE(bad.ok);
    EXPECT_FALSE(bad.error.empty());

    const bench::CompareOutcome garbage =
        bench::compareToBaseline(current, "not json", 10.0);
    EXPECT_FALSE(garbage.ok);
    EXPECT_FALSE(garbage.error.empty());
}

TEST_F(PerfTest, BenchProfileSatisfiesAudit)
{
    bench::BenchOptions options = fastOptions();
    options.profile = true;
    // runSuite itself enforces auditPerf per case under profile;
    // reaching here means the roll-up invariants held.
    const bench::BenchReport report = bench::runSuite(options);
    ASSERT_EQ(report.cases.size(), 1u);
    const perf::Report &profile = report.cases[0].profile;
    EXPECT_FALSE(profile.empty());
    EXPECT_EQ(profile.counterValue("npusim.runs"), 6u);
    ASSERT_NE(profile.phase("npusim.run"), nullptr);
    EXPECT_EQ(profile.phase("npusim.run")->count, 6u);
    // Harness-run audit again, with no wall bound, for good measure.
    EXPECT_TRUE(obs::auditPerf(profile).ok());
}

TEST(ServingEvents, ReportCountsCalendarPops)
{
    // eventsProcessed backs the harness's events metric: every
    // request needs at least its arrival pop, so the count is
    // bounded below by the volume the run certainly processed.
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    const dnn::Network net =
        dnn::parseNetwork("network PerfServeTest\n"
                          "conv c1  3 16 16 3 1 1\n"
                          "conv c2 16 16 16 3 1 1\n");
    const estimator::NpuConfig config =
        estimator::NpuConfig::superNpu();
    const estimator::NpuEstimate estimate =
        estimator::NpuEstimator(lib).estimate(config);
    const serving::BatchServiceModel service(estimate, net);

    serving::ServingConfig serving_cfg;
    serving_cfg.arrival.ratePerSec = 0.5 * service.peakRps(4);
    serving_cfg.batching.maxBatch = 4;
    serving_cfg.batching.timeoutSec = 1e-4;
    serving_cfg.requests = 500;
    const serving::ServingReport report =
        serving::ServingSimulator(service, serving_cfg).run();

    EXPECT_EQ(report.completed, 500u);
    EXPECT_GE(report.eventsProcessed, report.completed);
    EXPECT_GE(report.eventsProcessed,
              report.completed +
                  (std::uint64_t)report.batchesLaunched);
}

} // namespace
} // namespace supernpu
