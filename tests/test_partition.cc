/**
 * @file
 * Tests for the multi-chip partitioning subsystem: link-model
 * arithmetic and saturation, the bottleneck-minimizing DP, the K=1
 * equivalence guarantee (byte-identical ledgers against the
 * single-chip simulator), pipeline composition invariants through
 * obs::auditPipeline, throughput monotonicity on ResNet50, and the
 * memoized PipelineServiceModel the serving layer rides.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>

#include "dnn/networks.hh"
#include "dnn/parser.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "npusim/sim.hh"
#include "npusim/sim_cache.hh"
#include "obs/audit.hh"
#include "obs/ledger.hh"
#include "partition/pipeline_sim.hh"

namespace supernpu {
namespace partition {
namespace {

constexpr std::uint64_t kMax =
    std::numeric_limits<std::uint64_t>::max();

// --- link model ------------------------------------------------------

TEST(LinkModel, TransferCyclesAreLatencyPlusWireTime)
{
    LinkConfig link;
    link.bandwidthGBps = 100.0;
    link.latencyCycles = 10;
    // 1000 bytes at 50 GHz over 100 GB/s: ceil(1000*50/100) = 500
    // wire cycles on top of the fixed latency.
    EXPECT_EQ(transferCycles(link, 1000, 50.0), 510u);
    // An empty transfer still pays the fixed latency.
    EXPECT_EQ(transferCycles(link, 0, 50.0), 10u);
}

TEST(LinkModel, TransferCyclesSaturateInsteadOfWrapping)
{
    LinkConfig link;
    link.bandwidthGBps = 100.0;
    link.latencyCycles = 10;
    EXPECT_EQ(transferCycles(link, kMax, 200.0), kMax);
}

TEST(LinkModel, ActivationBytesMatchOfmapTimesBatch)
{
    const dnn::Layer layer = dnn::conv("c", 3, 32, 16, 3, 1, 1);
    EXPECT_EQ(activationBytes(layer, 1), layer.ofmapBytes());
    EXPECT_EQ(activationBytes(layer, 8), 8u * layer.ofmapBytes());
}

TEST(LinkModel, ActivationBytesSaturateOnAbsurdShapes)
{
    // 2e9 channels x 1e5 x 1e5 positions is ~2e19 bytes per image —
    // past UINT64_MAX, and past what ofmapBytes() can represent
    // without wrapping. The link model must saturate, not wrap.
    const dnn::Layer layer =
        dnn::conv("huge", 1, 100000, 2000000000, 1, 1, 0);
    EXPECT_EQ(activationBytes(layer, 1), kMax);
    EXPECT_EQ(activationBytes(layer, 1000), kMax);
}

// --- partitioner -----------------------------------------------------

/** Shared design point + a cheap four-conv network. */
class PartitionFixture : public ::testing::Test
{
  protected:
    PartitionFixture()
        : net(dnn::parseNetwork("network PartTest\n"
                                "conv c1  3 32 16 3 1 1\n"
                                "conv c2 16 32 32 3 1 1\n"
                                "conv c3 32 16 32 3 1 1\n"
                                "conv c4 32 16 16 3 1 1\n")),
          config(estimator::NpuConfig::superNpu()),
          estimate(estimator::NpuEstimator(lib).estimate(config)),
          batch(npusim::maxBatch(config, estimate, net))
    {
    }

    sfq::DeviceConfig dev;
    sfq::CellLibrary lib{dev};
    dnn::Network net;
    estimator::NpuConfig config;
    estimator::NpuEstimate estimate;
    int batch;
    npusim::SimCache cache;
};

TEST_F(PartitionFixture, SingleStageIsByteIdenticalToDirectRun)
{
    Partitioner partitioner(estimate, {}, &cache);
    const PartitionPlan plan = partitioner.partition(net, 1, batch);
    ASSERT_EQ(plan.stageCount(), 1);
    EXPECT_EQ(plan.stages[0].linkBytes, 0u);
    EXPECT_EQ(plan.stages[0].linkCycles, 0u);

    npusim::NpuSimulator sim(estimate);
    const npusim::SimResult direct = sim.run(net, batch);
    EXPECT_EQ(plan.stages[0].stageCycles, direct.totalCycles);

    // The strong form of the K=1 guarantee: the stage's ledger is
    // byte-for-byte the single-chip simulator's ledger.
    obs::RunLedger staged, reference;
    obs::addSimResult(staged, *plan.stages[0].sim);
    obs::addSimResult(reference, direct);
    EXPECT_EQ(staged.json(), reference.json());
}

TEST_F(PartitionFixture, TwoStagesBeatTheSingleStageBottleneck)
{
    // A real workload: on the tiny fixture net the standalone stage
    // re-simulation overhead (the stage head cannot overlap its
    // first weight fetch) can exceed the split savings, and the
    // partitioner honestly reports that. ResNet-18 is deep enough
    // that halving genuinely halves the bottleneck.
    const dnn::Network deep = dnn::makeResNet18();
    const int deep_batch = npusim::maxBatch(config, estimate, deep);
    Partitioner partitioner(estimate, {}, &cache);
    const PartitionPlan one =
        partitioner.partition(deep, 1, deep_batch);
    const PartitionPlan two =
        partitioner.partition(deep, 2, deep_batch);
    ASSERT_EQ(two.stageCount(), 2);
    EXPECT_LT(two.bottleneckCycles, one.bottleneckCycles);
    // Stages are contiguous and cover the network exactly once.
    EXPECT_EQ(two.stages[0].firstLayer, 0);
    EXPECT_EQ(two.stages[1].firstLayer, two.stages[0].lastLayer + 1);
    EXPECT_EQ(two.stages[1].lastLayer, (int)deep.layers.size() - 1);
    // Only interior boundaries ship activations.
    EXPECT_GT(two.stages[0].linkBytes, 0u);
    EXPECT_EQ(two.stages[1].linkBytes, 0u);
}

TEST_F(PartitionFixture, StageCountIsClampedToLayerCount)
{
    Partitioner partitioner(estimate, {}, &cache);
    const PartitionPlan plan = partitioner.partition(net, 99, batch);
    EXPECT_EQ(plan.stageCount(), (int)net.layers.size());
    for (const auto &stage : plan.stages)
        EXPECT_EQ(stage.layerCount(), 1);
}

TEST_F(PartitionFixture, RepartitioningHitsTheSimCache)
{
    Partitioner partitioner(estimate, {}, &cache);
    partitioner.partition(net, 2, batch);
    const auto before = cache.stats();
    partitioner.partition(net, 2, batch);
    const auto after = cache.stats();
    // The second partition re-simulates nothing: same full-network
    // run, same stage sub-networks, all served from the cache.
    EXPECT_EQ(after.misses, before.misses);
    EXPECT_GT(after.hits, before.hits);
}

TEST_F(PartitionFixture, RepartitioningHitsTheLayerTimingCache)
{
    Partitioner partitioner(estimate, {}, &cache);
    partitioner.partition(net, 2, batch);
    const LayerTimingCacheStats first =
        partitioner.timingCacheStats();
    EXPECT_EQ(first.misses, 1u);
    EXPECT_EQ(first.hits, 0u);

    // Any other K of the same (network, batch) reuses the memoized
    // prefix sums and link costs — the sweep pattern the planner's
    // K = 1..layers enumeration produces.
    partitioner.partition(net, 3, batch);
    const LayerTimingCacheStats second =
        partitioner.timingCacheStats();
    EXPECT_EQ(second.misses, first.misses);
    EXPECT_EQ(second.hits, first.hits + 1);

    // A different batch is a different timing point.
    partitioner.partition(net, 2, std::max(1, batch - 1));
    EXPECT_EQ(partitioner.timingCacheStats().misses,
              first.misses + 1);
}

// --- layer-timing cache ----------------------------------------------

/** A minimal one-layer LayerTimings tagged by configName. */
LayerTimings
namedTimings(const char *name)
{
    LayerTimings timings;
    timings.configName = name;
    timings.frequencyGhz = 1.0;
    timings.prefix = {0.0, 2.0};
    timings.linkAfter = {0.0};
    timings.linkCycles = {0};
    timings.linkBytes = {0};
    return timings;
}

TEST(LayerTimingCache, MemoizesOneBuildPerKey)
{
    LayerTimingCache cache;
    int builds = 0;
    const auto build = [&]() {
        ++builds;
        return namedTimings("a");
    };
    const auto first = cache.getOrBuild(0x51, 4, build);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(first->layerCount(), 1);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);

    // Same key: the very same shared object, no rebuild.
    const auto again = cache.getOrBuild(0x51, 4, build);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(again.get(), first.get());
    EXPECT_EQ(cache.stats().hits, 1u);

    // A different batch is a different key.
    const auto other = cache.getOrBuild(0x51, 8, build);
    EXPECT_EQ(builds, 2);
    EXPECT_NE(other.get(), first.get());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(LayerTimingCache, TrustsTheNetworkHashUntilCleared)
{
    // The cache is keyed on (network hash, batch) alone: a colliding
    // key hands back the FIRST build's timings, never re-running the
    // builder. hashNetwork must therefore cover every field the
    // timing derivation reads; this pins that contract, and that
    // clear() is the only invalidation.
    LayerTimingCache cache;
    const auto first = cache.getOrBuild(
        7, 1, [] { return namedTimings("first"); });
    const auto collided = cache.getOrBuild(
        7, 1, [] { return namedTimings("second"); });
    EXPECT_EQ(collided.get(), first.get());
    EXPECT_EQ(collided->configName, "first");

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
    const auto rebuilt = cache.getOrBuild(
        7, 1, [] { return namedTimings("second"); });
    EXPECT_EQ(rebuilt->configName, "second");
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(PartitionFixture, PlansAreDeterministicAcrossFreshCaches)
{
    const auto fingerprint = [&]() {
        npusim::SimCache fresh;
        PipelineSimulator sim(estimate, {}, &fresh);
        obs::RunLedger ledger;
        obs::addPipelineResult(ledger, sim.run(net, 3, batch, 16));
        return ledger.json();
    };
    EXPECT_EQ(fingerprint(), fingerprint());
}

// --- pipeline composition --------------------------------------------

TEST_F(PartitionFixture, PipelineResultPassesTheAudit)
{
    PipelineSimulator sim(estimate, {}, &cache);
    for (int stages : {1, 2, 3, 4}) {
        const PipelineResult run = sim.run(net, stages, batch, 8);
        const obs::AuditReport audit = obs::auditPipeline(run);
        EXPECT_TRUE(audit.ok()) << audit.summary();
        EXPECT_EQ(run.makespanCycles,
                  run.plan.fillCycles +
                      7u * run.plan.bottleneckCycles);
        for (int s = 0; s < run.plan.stageCount(); ++s) {
            EXPECT_GT(run.plan.stageUtilization(s), 0.0);
            EXPECT_LE(run.plan.stageUtilization(s), 1.0);
        }
        EXPECT_DOUBLE_EQ(
            run.plan.stageUtilization(run.plan.bottleneckStage), 1.0);
    }
}

TEST_F(PartitionFixture, AuditCatchesACookedBottleneck)
{
    PipelineSimulator sim(estimate, {}, &cache);
    PipelineResult run = sim.run(net, 2, batch, 8);
    run.plan.bottleneckCycles += 1;
    EXPECT_FALSE(obs::auditPipeline(run).ok());
}

TEST(PartitionResNet50, ThroughputIsMonotonicInPipelineDepth)
{
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    const estimator::NpuConfig config =
        estimator::NpuConfig::superNpu();
    const estimator::NpuEstimate estimate =
        estimator::NpuEstimator(lib).estimate(config);
    const dnn::Network net = dnn::makeResNet50();
    const int batch = npusim::maxBatch(config, estimate, net);

    npusim::SimCache cache;
    PipelineSimulator sim(estimate, {}, &cache);
    double last = 0.0;
    for (int stages : {1, 2, 4}) {
        const PipelineResult run = sim.run(net, stages, batch, 4);
        const obs::AuditReport audit = obs::auditPipeline(run);
        EXPECT_TRUE(audit.ok()) << audit.summary();
        EXPECT_GE(run.steadyInferencesPerSec(), last);
        last = run.steadyInferencesPerSec();
    }
}

// --- serving-facing timing model -------------------------------------

TEST_F(PartitionFixture, ServiceModelTimingIsConsistent)
{
    PipelineServiceModel model(estimate, net, 2, {}, &cache);
    const auto timing = model.timing(batch);
    ASSERT_EQ(timing.stageBusySec.size(), 2u);
    // Latency is the serial walk through both stages; the interval
    // is just the bottleneck, so it can never exceed the latency.
    EXPECT_GE(timing.latencySec, timing.intervalSec);
    EXPECT_NEAR(timing.latencySec,
                timing.stageBusySec[0] + timing.stageBusySec[1],
                1e-12);
    EXPECT_DOUBLE_EQ(timing.stageStartSec[0], 0.0);
    EXPECT_NEAR(timing.stageStartSec[1], timing.stageBusySec[0],
                1e-12);
    // Memoized: identical object on the second call.
    EXPECT_DOUBLE_EQ(model.timing(batch).latencySec,
                     timing.latencySec);
}

TEST_F(PartitionFixture, SingleStageServiceModelMatchesTheBatchTime)
{
    PipelineServiceModel model(estimate, net, 1, {}, &cache);
    const auto timing = model.timing(batch);
    // K=1: no link, one stage — latency and interval are both the
    // plain batch service time of the single-chip simulator.
    npusim::NpuSimulator sim(estimate);
    const double batch_sec = sim.run(net, batch).seconds();
    EXPECT_DOUBLE_EQ(timing.latencySec, timing.intervalSec);
    EXPECT_DOUBLE_EQ(timing.latencySec, batch_sec);
}

} // namespace
} // namespace partition
} // namespace supernpu
