/**
 * @file
 * Tests for the network description parser and formatter, including
 * the edge cases the partitioner leans on: single-layer networks,
 * layers whose output tensor overflows the link-transfer size type,
 * and stage counts exceeding the layer count.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "dnn/networks.hh"
#include "dnn/parser.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/sim_cache.hh"
#include "partition/partitioner.hh"

namespace supernpu {
namespace dnn {
namespace {

TEST(Parser, ParsesAllThreeLayerKinds)
{
    const Network net = parseNetwork(
        "# a demo network\n"
        "network Demo\n"
        "conv   conv1  3 32 16 3 2 1\n"
        "dwconv dw2   16 16  - 3 1 1\n"
        "fc     fc1  4096 - 10 - - -\n");
    EXPECT_EQ(net.name, "Demo");
    ASSERT_EQ(net.layers.size(), 3u);
    EXPECT_EQ(net.layers[0].kind, LayerKind::Conv);
    EXPECT_EQ(net.layers[0].outHeight(), 16);
    EXPECT_EQ(net.layers[1].kind, LayerKind::DepthwiseConv);
    EXPECT_EQ(net.layers[1].outChannels, 16);
    EXPECT_EQ(net.layers[2].kind, LayerKind::FullyConnected);
    EXPECT_EQ(net.layers[2].outChannels, 10);
}

TEST(Parser, SkipsCommentsAndBlankLines)
{
    const Network net = parseNetwork(
        "\n"
        "network X  # inline comment\n"
        "\n"
        "# full-line comment\n"
        "conv c 3 8 4 3 1 1  # trailing comment\n");
    EXPECT_EQ(net.layers.size(), 1u);
}

TEST(Parser, RoundTripsTheBuiltInZoo)
{
    for (const auto &net : evaluationWorkloads()) {
        const Network reparsed = parseNetwork(formatNetwork(net));
        EXPECT_EQ(reparsed.name, net.name);
        ASSERT_EQ(reparsed.layers.size(), net.layers.size())
            << net.name;
        EXPECT_EQ(reparsed.totalMacs(), net.totalMacs()) << net.name;
        EXPECT_EQ(reparsed.totalWeightBytes(), net.totalWeightBytes())
            << net.name;
        for (std::size_t i = 0; i < net.layers.size(); ++i) {
            EXPECT_EQ(reparsed.layers[i].kind, net.layers[i].kind)
                << net.name << " layer " << i;
            EXPECT_EQ(reparsed.layers[i].macCount(),
                      net.layers[i].macCount())
                << net.name << " layer " << i;
        }
    }
}

TEST(ParserDeath, RejectsMalformedInput)
{
    EXPECT_DEATH((void)parseNetwork("conv c 3 8 4 3 1 1\n"),
                 "must be 'network");
    EXPECT_DEATH((void)parseNetwork("network X\nconv c 3 8\n"),
                 "expected 8 fields");
    EXPECT_DEATH(
        (void)parseNetwork("network X\nblob c 3 8 4 3 1 1\n"),
        "unknown layer kind");
    EXPECT_DEATH((void)parseNetwork("network X\n"), "no layers");
    EXPECT_DEATH(
        (void)parseNetwork("network X\nconv c 3 8 4 3 1 oops\n"),
        "bad integer");
    EXPECT_DEATH(
        (void)parseNetwork("network X\nconv c - 8 4 3 1 1\n"),
        "required");
}

TEST(ParserDeath, RejectsDuplicateNetworkLine)
{
    EXPECT_DEATH((void)parseNetwork("network A\nnetwork B\n"),
                 "duplicate");
}

// --- partitioner-facing edge cases -----------------------------------

TEST(ParserPartition, SingleLayerNetworkPartitionsIntoOneStage)
{
    const Network net = parseNetwork("network Solo\n"
                                     "conv only 3 16 8 3 1 1\n");
    ASSERT_EQ(net.layers.size(), 1u);

    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    const auto estimate = estimator::NpuEstimator(lib).estimate(
        estimator::NpuConfig::superNpu());
    npusim::SimCache cache;
    partition::Partitioner partitioner(estimate, {}, &cache);
    // Asking for any K collapses — with a warn — to the one layer.
    const auto plan = partitioner.partition(net, 4, 1);
    ASSERT_EQ(plan.stageCount(), 1);
    EXPECT_EQ(plan.stages[0].firstLayer, 0);
    EXPECT_EQ(plan.stages[0].lastLayer, 0);
    EXPECT_EQ(plan.stages[0].linkBytes, 0u);
}

TEST(ParserPartition, HugeParsedLayerSaturatesTheLinkTransfer)
{
    // The parser does not bound layer fields, so a syntactically
    // valid description can describe an ofmap beyond 2^64 bytes.
    const Network net = parseNetwork(
        "network Huge\n"
        "conv big 1 100000 2000000000 1 1 0\n");
    EXPECT_EQ(partition::activationBytes(net.layers[0], 4),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(ParserPartition, StageCountBeyondLayersFallsBack)
{
    const Network net = parseNetwork("network Pair\n"
                                     "conv a 3 16 8 3 1 1\n"
                                     "conv b 8 16 8 3 1 1\n");
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    const auto estimate = estimator::NpuEstimator(lib).estimate(
        estimator::NpuConfig::superNpu());
    npusim::SimCache cache;
    partition::Partitioner partitioner(estimate, {}, &cache);
    const auto plan = partitioner.partition(net, 7, 1);
    EXPECT_EQ(plan.stageCount(), 2);
}

} // namespace
} // namespace dnn
} // namespace supernpu
