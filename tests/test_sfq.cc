/**
 * @file
 * Tests for the SFQ device config, cell library, and the Eq. (1)
 * clocking/frequency model — including the paper's published anchor
 * values and the Fig. 7(c) frequency targets.
 */

#include <gtest/gtest.h>

#include "sfq/cells.hh"
#include "sfq/clock_tree.hh"
#include "sfq/clocking.hh"
#include "sfq/ptl.hh"
#include "sfq/device.hh"

namespace supernpu {
namespace sfq {
namespace {

// --- device ------------------------------------------------------------

TEST(Device, RsfqStaticPowerPerJj)
{
    DeviceConfig dev; // RSFQ defaults
    // 2.5 mV x 70 uA = 0.175 uW per junction (Section VI-C).
    EXPECT_NEAR(dev.staticPowerPerJj(), 0.175e-6, 1e-12);
    EXPECT_DOUBLE_EQ(dev.switchEnergyFactor(), 1.0);
}

TEST(Device, ErsfqEliminatesStaticDoublesDynamic)
{
    DeviceConfig dev;
    dev.technology = Technology::ERSFQ;
    EXPECT_DOUBLE_EQ(dev.staticPowerPerJj(), 0.0);
    EXPECT_DOUBLE_EQ(dev.switchEnergyFactor(), 2.0);
}

TEST(Device, TimingScalesLinearlyUntilFloor)
{
    DeviceConfig dev;
    dev.featureSizeUm = 0.5;
    EXPECT_DOUBLE_EQ(dev.timingScale(), 0.5);
    dev.featureSizeUm = 0.1; // below the 0.2 um scaling floor
    EXPECT_DOUBLE_EQ(dev.timingScale(), 0.2);
}

TEST(Device, AreaScalesQuadratically)
{
    DeviceConfig dev;
    dev.featureSizeUm = 0.5;
    EXPECT_DOUBLE_EQ(dev.areaScale(), 0.25);
}

TEST(Device, EnergyPerSwitchIsIcPhi0)
{
    DeviceConfig dev;
    EXPECT_NEAR(dev.energyPerJjSwitch(), 1e-4 * 2.067833848e-15, 1e-25);
}

TEST(Device, TechnologyNames)
{
    EXPECT_STREQ(technologyName(Technology::RSFQ), "RSFQ");
    EXPECT_STREQ(technologyName(Technology::ERSFQ), "ERSFQ");
}

// --- cell library -------------------------------------------------------

class RsfqLibrary : public ::testing::Test
{
  protected:
    DeviceConfig dev;
    CellLibrary lib{dev};
};

TEST_F(RsfqLibrary, PublishedAndAnchor)
{
    // The paper's Fig. 10 table: AND = 8.3 ps, 3.6 uW, 1.4 aJ.
    EXPECT_DOUBLE_EQ(lib.gate(GateKind::AND).delay, 8.3);
    EXPECT_NEAR(lib.staticPower(GateKind::AND), 3.6e-6, 0.05e-6);
    EXPECT_NEAR(lib.accessEnergy(GateKind::AND), 1.4e-18, 1e-21);
}

TEST_F(RsfqLibrary, PublishedXorAnchor)
{
    // XOR = 6.5 ps, 3.0 uW, 1.4 aJ.
    EXPECT_DOUBLE_EQ(lib.gate(GateKind::XOR).delay, 6.5);
    EXPECT_NEAR(lib.staticPower(GateKind::XOR), 3.0e-6, 0.05e-6);
    EXPECT_NEAR(lib.accessEnergy(GateKind::XOR), 1.4e-18, 1e-21);
}

TEST_F(RsfqLibrary, AsynchronousCellsHaveNoSetupHold)
{
    for (GateKind kind :
         {GateKind::SPLITTER, GateKind::MERGER, GateKind::JTL}) {
        EXPECT_DOUBLE_EQ(lib.gate(kind).setupTime, 0.0) << gateName(kind);
        EXPECT_DOUBLE_EQ(lib.gate(kind).holdTime, 0.0) << gateName(kind);
    }
}

TEST_F(RsfqLibrary, ClockedCellsHaveTiming)
{
    for (GateKind kind : {GateKind::DFF, GateKind::AND, GateKind::OR,
                          GateKind::XOR, GateKind::NOT, GateKind::TFF,
                          GateKind::NDRO, GateKind::DFF_BYPASS}) {
        EXPECT_GT(lib.gate(kind).setupTime, 0.0) << gateName(kind);
        EXPECT_GT(lib.gate(kind).holdTime, 0.0) << gateName(kind);
        EXPECT_GT(lib.gate(kind).delay, 0.0) << gateName(kind);
    }
}

TEST_F(RsfqLibrary, AreaProportionalToJjCount)
{
    const double per_jj = lib.areaPerJj();
    EXPECT_GT(per_jj, 0.0);
    EXPECT_NEAR(lib.area(GateKind::AND),
                (double)lib.gate(GateKind::AND).jjCount * per_jj, 1e-15);
    // Memory bit cells tile denser than random logic.
    EXPECT_LT(lib.memoryAreaPerJj(), lib.areaPerJj());
}

TEST_F(RsfqLibrary, InterfaceCellsAreCostly)
{
    // The SFQ/DC output amplifier is the heavy interface cell:
    // far more biasing than any logic gate (stacked drivers).
    EXPECT_GT(lib.staticPower(GateKind::SFQDC),
              10.0 * lib.staticPower(GateKind::AND));
    // The input converter is cheap, DFF-class.
    EXPECT_LT(lib.staticPower(GateKind::DCSFQ),
              lib.staticPower(GateKind::AND));
    // The clock generator free-runs: it has no setup/hold of its own.
    EXPECT_DOUBLE_EQ(lib.gate(GateKind::CLKGEN).setupTime, 0.0);
    EXPECT_GT(lib.gate(GateKind::CLKGEN).jjCount, 100u);
}

TEST(CellLibrary, ErsfqDoublesAccessEnergyKeepsTiming)
{
    DeviceConfig rsfq;
    DeviceConfig ersfq;
    ersfq.technology = Technology::ERSFQ;
    CellLibrary lib_r(rsfq), lib_e(ersfq);
    for (GateKind kind : {GateKind::DFF, GateKind::AND, GateKind::XOR}) {
        EXPECT_DOUBLE_EQ(lib_e.gate(kind).delay, lib_r.gate(kind).delay);
        EXPECT_DOUBLE_EQ(lib_e.accessEnergy(kind),
                         2.0 * lib_r.accessEnergy(kind));
        EXPECT_DOUBLE_EQ(lib_e.staticPower(kind), 0.0);
    }
}

TEST(CellLibrary, FeatureScalingSpeedsUpGates)
{
    DeviceConfig coarse; // 1.0 um
    DeviceConfig fine;
    fine.featureSizeUm = 0.5;
    CellLibrary lib_c(coarse), lib_f(fine);
    EXPECT_NEAR(lib_f.gate(GateKind::AND).delay,
                0.5 * lib_c.gate(GateKind::AND).delay, 1e-12);
    EXPECT_NEAR(lib_f.areaPerJj(), 0.25 * lib_c.areaPerJj(), 1e-18);
}

// --- Eq. (1) clocking model ---------------------------------------------

TEST(Clocking, HoldTimeBindsWhenDeltaTSmall)
{
    GatePair pair;
    pair.driverDelay = 0.5;
    pair.dataWireDelay = 0.0;
    pair.clockPathDelay = 0.4; // concurrent: delta_t = 0.1 < hold
    pair.setupTime = 2.0;
    pair.holdTime = 1.0;
    pair.scheme = ClockScheme::ConcurrentFlow;
    EXPECT_NEAR(pairCct(pair), 3.0, 1e-12); // setup + hold
}

TEST(Clocking, DeltaTBindsWhenLarge)
{
    GatePair pair;
    pair.driverDelay = 6.0;
    pair.setupTime = 2.0;
    pair.holdTime = 1.0;
    pair.scheme = ClockScheme::ConcurrentFlow;
    EXPECT_NEAR(pairCct(pair), 8.0, 1e-12); // setup + delta_t
}

TEST(Clocking, CounterFlowAddsClockSegment)
{
    GatePair pair;
    pair.driverDelay = 5.0;
    pair.dataWireDelay = 1.0;
    pair.clockPathDelay = 4.0;
    pair.setupTime = 2.0;
    pair.holdTime = 1.0;

    pair.scheme = ClockScheme::ConcurrentFlow;
    const double concurrent = pairCct(pair); // 2 + (6 - 4) = 4
    pair.scheme = ClockScheme::CounterFlow;
    const double counter = pairCct(pair); // 2 + (6 + 4) = 12
    EXPECT_NEAR(concurrent, 4.0, 1e-12);
    EXPECT_NEAR(counter, 12.0, 1e-12);
    EXPECT_GT(counter, concurrent);
}

TEST(Clocking, SkewCancelsConcurrentDelta)
{
    GatePair pair;
    pair.driverDelay = 8.0;
    pair.setupTime = 2.0;
    pair.holdTime = 1.0;
    pair.scheme = ClockScheme::ConcurrentFlow;

    const GatePair half = withClockSkew(pair, 0.5);
    EXPECT_NEAR(pairDeltaT(half), 4.0, 1e-12);
    const GatePair full = withClockSkew(pair, 1.0);
    EXPECT_NEAR(pairDeltaT(full), 0.0, 1e-12);
    EXPECT_NEAR(pairCct(full), 3.0, 1e-12); // setup + hold floor
}

TEST(Clocking, SkewDoesNotHelpCounterFlow)
{
    GatePair pair;
    pair.driverDelay = 8.0;
    pair.clockPathDelay = 3.0;
    pair.setupTime = 2.0;
    pair.holdTime = 1.0;
    pair.scheme = ClockScheme::CounterFlow;
    const GatePair skewed = withClockSkew(pair, 1.0);
    EXPECT_DOUBLE_EQ(pairCct(skewed), pairCct(pair));
}

TEST(Clocking, MinFrequencyPicksWorstPair)
{
    GatePair fast;
    fast.name = "fast";
    fast.driverDelay = 2.0;
    fast.setupTime = 1.0;
    GatePair slow;
    slow.name = "slow";
    slow.driverDelay = 10.0;
    slow.setupTime = 1.0;
    const std::vector<GatePair> pairs = {fast, slow};
    EXPECT_DOUBLE_EQ(minFrequencyGhz(pairs), pairFrequencyGhz(slow));
    EXPECT_EQ(criticalPair(pairs).name, "slow");
}

TEST(Clocking, MakePairRejectsClockedViaElements)
{
    DeviceConfig dev;
    CellLibrary lib(dev);
    EXPECT_DEATH((void)makePair(lib, "bad", GateKind::DFF, GateKind::DFF,
                                {GateKind::AND}, 0.0,
                                ClockScheme::ConcurrentFlow),
                 "asynchronous");
}

// --- clock distribution tree ----------------------------------------------

TEST(ClockTree, SingleSinkIsTrivial)
{
    DeviceConfig dev;
    CellLibrary lib(dev);
    ClockTreeModel tree(lib, 1);
    EXPECT_EQ(tree.depth(), 0);
    EXPECT_EQ(tree.splitterCount(), 0ull);
    EXPECT_DOUBLE_EQ(tree.insertionDelayPs(), 0.0);
}

TEST(ClockTree, BinaryTreeArithmetic)
{
    DeviceConfig dev;
    CellLibrary lib(dev);
    ClockTreeModel tree(lib, 1024);
    EXPECT_EQ(tree.depth(), 10);
    EXPECT_EQ(tree.splitterCount(), 1023ull);
    EXPECT_GT(tree.jjCount(), tree.splitterCount() * 3);
}

TEST(ClockTree, EnergyAndPowerScaleWithSinks)
{
    DeviceConfig dev;
    CellLibrary lib(dev);
    ClockTreeModel small(lib, 1000);
    ClockTreeModel large(lib, 1000000);
    EXPECT_NEAR(large.tickEnergy() / small.tickEnergy(), 1000.0, 10.0);
    EXPECT_GT(large.dynamicPower(52.6), small.dynamicPower(52.6));
}

TEST(ClockTree, SkewGrowsSlowerThanDelay)
{
    // The random-walk skew grows with sqrt(depth); the insertion
    // delay grows linearly — deep trees stay usable because only the
    // *skew* eats into the Eq. (1) timing budget.
    DeviceConfig dev;
    CellLibrary lib(dev);
    ClockTreeModel tree(lib, 1u << 20);
    EXPECT_LT(tree.accumulatedSkewPs(), tree.insertionDelayPs() / 10.0);
    // The NPU-scale tree's skew still fits the 52.6 GHz hold margin.
    EXPECT_LT(tree.accumulatedSkewPs(),
              lib.gate(GateKind::DFF).holdTime * 2.0);
}

TEST(ClockTree, NpuScaleClockPowerIsSignificant)
{
    // ~5e8 clocked gates at 52.6 GHz: the clock network alone burns
    // watts of dynamic power on ERSFQ — the always-ticking tax the
    // PE energy calibration folds in.
    DeviceConfig dev;
    dev.technology = Technology::ERSFQ;
    CellLibrary lib(dev);
    ClockTreeModel tree(lib, 500000000ull);
    const double watts = tree.dynamicPower(52.6);
    EXPECT_GT(watts, 10.0);
    EXPECT_LT(watts, 1000.0);
}

// --- passive transmission lines -----------------------------------------

TEST(Ptl, DelayScalesWithLength)
{
    DeviceConfig dev;
    CellLibrary lib(dev);
    PtlModel one(lib, 1.0), ten(lib, 10.0);
    // 0.1 mm/ps ballistic velocity dominates past the endpoints.
    EXPECT_NEAR(ten.delayPs() - one.delayPs(), 90.0, 1.0);
}

TEST(Ptl, SkewGrowsAsSquareRoot)
{
    DeviceConfig dev;
    CellLibrary lib(dev);
    PtlModel one(lib, 1.0), four(lib, 4.0);
    EXPECT_NEAR(four.coRoutedSkewPs() / one.coRoutedSkewPs(), 2.0,
                0.01);
}

TEST(Ptl, LatencyDoesNotBoundCoRoutedClock)
{
    // The architectural property: with a co-routed clock, the link
    // clock stays near the cell-level limit regardless of length.
    DeviceConfig dev;
    CellLibrary lib(dev);
    for (double mm : {1.0, 5.0, 20.0}) {
        PtlModel ptl(lib, mm);
        GatePair pair = makePair(lib, "link", GateKind::DFF,
                                 GateKind::DFF, {}, 0.0,
                                 ClockScheme::ConcurrentFlow);
        pair.dataWireDelay = ptl.delayPs();
        pair.clockPathDelay = ptl.delayPs() - ptl.coRoutedSkewPs();
        EXPECT_GT(pairFrequencyGhz(pair), 100.0) << mm;
        EXPECT_GT(ptl.pulsesInFlight(52.6), 0.0) << mm;
    }
}

TEST(Ptl, RepeatersAddJunctionsAndEnergy)
{
    DeviceConfig dev;
    CellLibrary lib(dev);
    PtlModel short_link(lib, 1.0), long_link(lib, 20.0);
    EXPECT_GT(long_link.jjCount(), short_link.jjCount());
    EXPECT_GT(long_link.transferEnergy(),
              short_link.transferEnergy());
    EXPECT_GT(long_link.staticPower(), 0.0);
}

// --- Fig. 7(c) calibration targets ---------------------------------------

/**
 * Shift register: concurrent-flow (no feedback) ~133 GHz,
 * counter-flow (feedback-safe) ~71 GHz.
 */
TEST(Fig7Targets, ShiftRegisterFrequencies)
{
    DeviceConfig dev;
    CellLibrary lib(dev);

    GatePair concurrent =
        makePair(lib, "SR concurrent", GateKind::DFF, GateKind::DFF,
                 {GateKind::JTL}, 0.0, ClockScheme::ConcurrentFlow);
    EXPECT_NEAR(pairFrequencyGhz(concurrent), 133.0, 5.0);

    GatePair counter =
        makePair(lib, "SR counter", GateKind::DFF, GateKind::DFF,
                 {GateKind::JTL}, 0.0, ClockScheme::CounterFlow);
    counter.clockPathDelay = lib.gate(GateKind::DFF).delay +
                             lib.gate(GateKind::JTL).delay +
                             lib.gate(GateKind::SPLITTER).delay;
    EXPECT_NEAR(pairFrequencyGhz(counter), 71.0, 3.0);
}

/** Full adder: ~66 GHz concurrent, ~30 GHz counter-flow. */
TEST(Fig7Targets, FullAdderFrequencies)
{
    DeviceConfig dev;
    CellLibrary lib(dev);

    GatePair concurrent = makePair(
        lib, "FA concurrent", GateKind::AND, GateKind::XOR,
        {GateKind::SPLITTER, GateKind::MERGER, GateKind::JTL}, 0.0,
        ClockScheme::ConcurrentFlow);
    EXPECT_NEAR(pairFrequencyGhz(concurrent), 66.0, 3.0);

    GatePair counter = concurrent;
    counter.scheme = ClockScheme::CounterFlow;
    // The clock segment retraces the loop: the data path plus the
    // accumulator feedback return.
    counter.clockPathDelay =
        counter.driverDelay + counter.dataWireDelay + 5.5;
    EXPECT_NEAR(pairFrequencyGhz(counter), 30.0, 2.0);
}

} // namespace
} // namespace sfq
} // namespace supernpu
