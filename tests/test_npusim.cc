/**
 * @file
 * Tests for the cycle-level NPU performance simulator: the batch
 * solver (Table II), MAC conservation, the Fig. 15/18/20/22 cost
 * mechanics, and the optimization-step orderings.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "dnn/networks.hh"
#include "npusim/batch.hh"
#include "npusim/mapping.hh"
#include "npusim/sim.hh"

namespace supernpu {
namespace npusim {
namespace {

using estimator::NpuConfig;
using estimator::NpuEstimate;
using estimator::NpuEstimator;

class SimFixture : public ::testing::Test
{
  protected:
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib{dev};
    NpuEstimator estimator{lib};

    NpuEstimate
    estimate(const NpuConfig &config) const
    {
        return estimator.estimate(config);
    }
};

// --- batch solver (Table II) ----------------------------------------------

TEST_F(SimFixture, BaselineBatchIsOneEverywhere)
{
    const NpuConfig config = NpuConfig::baseline();
    const NpuEstimate est = estimate(config);
    for (const auto &net : dnn::evaluationWorkloads())
        EXPECT_EQ(maxBatch(config, est, net), 1) << net.name;
}

TEST_F(SimFixture, BufferOptBatchesMatchTableTwo)
{
    const NpuConfig config = NpuConfig::bufferOpt();
    const NpuEstimate est = estimate(config);
    const auto nets = dnn::evaluationWorkloads();
    // Table II: AlexNet 15, GoogLeNet 3, MobileNet 3, ResNet50 3,
    // VGG16 1.
    EXPECT_NEAR(maxBatch(config, est, nets[0]), 15, 1); // AlexNet
    EXPECT_EQ(maxBatch(config, est, nets[2]), 3);       // GoogLeNet
    EXPECT_EQ(maxBatch(config, est, nets[3]), 3);       // MobileNet
    EXPECT_EQ(maxBatch(config, est, nets[4]), 3);       // ResNet50
    EXPECT_EQ(maxBatch(config, est, nets[5]), 1);       // VGG16
}

TEST_F(SimFixture, SuperNpuBatchesMatchTableTwo)
{
    const NpuConfig config = NpuConfig::superNpu();
    const NpuEstimate est = estimate(config);
    const auto nets = dnn::evaluationWorkloads();
    // Table II: 30 for most workloads, 7 for VGG16.
    EXPECT_EQ(maxBatch(config, est, nets[0]), 30); // AlexNet
    EXPECT_EQ(maxBatch(config, est, nets[2]), 30); // GoogLeNet
    EXPECT_EQ(maxBatch(config, est, nets[3]), 30); // MobileNet
    EXPECT_EQ(maxBatch(config, est, nets[4]), 30); // ResNet50
    EXPECT_EQ(maxBatch(config, est, nets[5]), 7);  // VGG16
}

TEST_F(SimFixture, UnifiedBatchMatchesTpuColumn)
{
    // Table II: the TPU runs AlexNet at batch 22 from its 24 MB
    // buffer / the 1.05 MB largest layer.
    const auto nets = dnn::evaluationWorkloads();
    const std::uint64_t buffer = 24 * units::MiB;
    EXPECT_NEAR(maxBatchUnified(buffer, nets[0]), 22, 1); // AlexNet
    EXPECT_EQ(maxBatchUnified(buffer, nets[5]), 3);       // VGG16
}

TEST_F(SimFixture, BatchIsClampedToCap)
{
    // A tiny network would fit hundreds of batches; the solver
    // follows the paper's conservative cap of 30.
    dnn::Network tiny;
    tiny.name = "tiny";
    tiny.layers = {dnn::conv("c", 8, 8, 64, 3)};
    const NpuConfig config = NpuConfig::superNpu();
    EXPECT_EQ(maxBatch(config, estimate(config), tiny), batchCap);
}

TEST_F(SimFixture, OutputWidthUnderutilizationBindsBatch)
{
    // Fig. 18(b): K = 64 filters on a 256-wide array strands 3/4 of
    // the output buffer; the same layer on a 64-wide array does not.
    dnn::Network narrow_k;
    narrow_k.name = "narrowK";
    narrow_k.layers = {dnn::conv("c", 64, 112, 64, 3)};

    const NpuConfig wide = NpuConfig::bufferOpt();     // width 256
    const NpuConfig narrow = NpuConfig::resourceOpt(); // width 64
    const int batch_wide = maxBatch(wide, estimate(wide), narrow_k);
    const int batch_narrow =
        maxBatch(narrow, estimate(narrow), narrow_k);
    EXPECT_GT(batch_narrow, 2 * batch_wide);
}

// --- mapping plans ----------------------------------------------------------

TEST_F(SimFixture, MappingPlanCoversEveryWeightOnce)
{
    for (const NpuConfig &config :
         {NpuConfig::baseline(), NpuConfig::superNpu()}) {
        for (const auto &net : dnn::evaluationWorkloads()) {
            for (const auto &layer : net.layers) {
                const MappingPlan plan =
                    MappingPlan::build(layer, config);
                EXPECT_EQ(plan.totalWeightBytes(), layer.weightBytes())
                    << net.name << "/" << layer.name;
                EXPECT_EQ(plan.mappings.size(),
                          plan.rowFolds * plan.colFolds)
                    << layer.name;
            }
        }
    }
}

TEST_F(SimFixture, MappingPlanCoversEveryMac)
{
    const NpuConfig config = NpuConfig::superNpu();
    for (const auto &net : dnn::evaluationWorkloads()) {
        for (const auto &layer : net.layers) {
            const MappingPlan plan = MappingPlan::build(layer, config);
            EXPECT_EQ(plan.totalMacs(layer.outputPositions(), 3),
                      layer.macCount() * 3ull)
                << net.name << "/" << layer.name;
        }
    }
}

TEST_F(SimFixture, RegistersShrinkColumnFolds)
{
    const dnn::Layer layer = dnn::conv("wide", 256, 14, 2048, 3);
    const MappingPlan one =
        MappingPlan::build(layer, NpuConfig::resourceOpt());
    const MappingPlan eight =
        MappingPlan::build(layer, NpuConfig::superNpu());
    EXPECT_EQ(one.colFolds, 32ull);  // 2048 / 64
    EXPECT_EQ(eight.colFolds, 4ull); // 2048 / (64 * 8)
    EXPECT_EQ(one.rowFolds, eight.rowFolds);
}

TEST_F(SimFixture, DepthwisePlansOneFilterPerMapping)
{
    const dnn::Layer layer = dnn::depthwise("dw", 128, 14, 1);
    const MappingPlan plan =
        MappingPlan::build(layer, NpuConfig::superNpu());
    EXPECT_TRUE(plan.depthwise);
    EXPECT_EQ(plan.colFolds, 128ull);
    for (const auto &mapping : plan.mappings) {
        EXPECT_EQ(mapping.activeCols, 1ull);
        EXPECT_EQ(mapping.activeRows, 9ull);
    }
}

// --- MAC conservation -------------------------------------------------------

/** The simulator executes exactly batch x layer MACs, per config. */
class MacConservation : public ::testing::TestWithParam<int>
{
};

TEST_P(MacConservation, MacsMatchAnalytical)
{
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    NpuEstimator estimator(lib);
    const NpuConfig configs[] = {
        NpuConfig::baseline(), NpuConfig::bufferOpt(),
        NpuConfig::resourceOpt(), NpuConfig::superNpu()};
    const NpuConfig &config = configs[GetParam()];
    const NpuEstimate est = estimator.estimate(config);
    NpuSimulator sim(est);

    for (const auto &net : dnn::evaluationWorkloads()) {
        const int batch = 3;
        const SimResult result = sim.run(net, batch);
        EXPECT_EQ(result.macOps, net.totalMacs() * (std::uint64_t)batch)
            << net.name << " on " << config.name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, MacConservation,
                         ::testing::Range(0, 4));

// --- trace recorder ----------------------------------------------------------

TEST_F(SimFixture, TraceRecordsOneEventPerMapping)
{
    const NpuEstimate est = estimate(NpuConfig::superNpu());
    NpuSimulator sim(est);
    TraceRecorder trace;
    sim.setTrace(&trace);
    const dnn::Layer layer = dnn::conv("c", 256, 14, 512, 3);
    const LayerResult res = sim.simulateLayer(layer, 2);
    EXPECT_EQ(trace.events().size(), res.weightMappings);

    // Per-event sums reconcile with the layer aggregates.
    std::uint64_t macs = 0, compute = 0, weight = 0;
    for (const auto &event : trace.events()) {
        macs += event.macOps;
        compute += event.computeCycles;
        weight += event.weightLoadCycles;
        EXPECT_EQ(event.layer, "c");
    }
    EXPECT_EQ(macs, res.macOps);
    EXPECT_EQ(compute, res.computeCycles);
    EXPECT_EQ(weight, res.prep.weightLoad);
}

TEST_F(SimFixture, TraceCsvHasHeaderAndRows)
{
    const NpuEstimate est = estimate(NpuConfig::superNpu());
    NpuSimulator sim(est);
    TraceRecorder trace;
    sim.setTrace(&trace);
    sim.simulateLayer(dnn::conv("layerX", 64, 14, 64, 3), 1);
    const std::string csv = trace.csv();
    EXPECT_NE(csv.find("layer,col_fold,row_fold"), std::string::npos);
    EXPECT_NE(csv.find("layerX,0,0,"), std::string::npos);
    trace.clear();
    EXPECT_TRUE(trace.events().empty());
}

TEST_F(SimFixture, DetachedTraceRecordsNothing)
{
    const NpuEstimate est = estimate(NpuConfig::superNpu());
    NpuSimulator sim(est);
    TraceRecorder trace;
    sim.setTrace(&trace);
    sim.setTrace(nullptr);
    sim.simulateLayer(dnn::conv("c", 64, 14, 64, 3), 1);
    EXPECT_TRUE(trace.events().empty());
}

// --- cycle accounting basics -----------------------------------------------

TEST_F(SimFixture, LayerTotalsRollUp)
{
    const NpuEstimate est = estimate(NpuConfig::superNpu());
    NpuSimulator sim(est);
    const SimResult result = sim.run(dnn::makeResNet50(), 4);
    std::uint64_t compute = 0, prep = 0, stall = 0, macs = 0;
    for (const auto &layer : result.layers) {
        compute += layer.computeCycles;
        prep += layer.prepCycles;
        stall += layer.memoryStallCycles;
        macs += layer.macOps;
    }
    EXPECT_EQ(compute, result.computeCycles);
    EXPECT_EQ(prep, result.prepCycles);
    EXPECT_EQ(stall, result.memoryStallCycles);
    EXPECT_EQ(macs, result.macOps);
    EXPECT_EQ(result.totalCycles, compute + prep + stall);
}

TEST_F(SimFixture, PrepBreakdownAccountsEveryPrepCycle)
{
    // Every prep cycle the simulator charges must land in exactly
    // one trace bucket (the Fig. 14 analyzer invariant).
    for (const NpuConfig &config :
         {NpuConfig::baseline(), NpuConfig::bufferOpt(),
          NpuConfig::superNpu()}) {
        const NpuEstimate est = estimate(config);
        NpuSimulator sim(est);
        for (const auto &net : dnn::evaluationWorkloads()) {
            const SimResult r = sim.run(net, 2);
            EXPECT_EQ(r.prep.total(), r.prepCycles)
                << net.name << " on " << config.name;
            for (const auto &layer : r.layers) {
                EXPECT_EQ(layer.prep.total(), layer.prepCycles)
                    << layer.layerName;
            }
        }
    }
}

TEST_F(SimFixture, BaselinePrepDominatedByBufferMovement)
{
    // Section V-A2: the Baseline's preparation is dominated by the
    // psum moves and ifmap rewinds of the monolithic buffers.
    const NpuEstimate est = estimate(NpuConfig::baseline());
    NpuSimulator sim(est);
    const SimResult r = sim.run(dnn::makeVgg16(), 1);
    const std::uint64_t movement = r.prep.psumMove + r.prep.ifmapRewind;
    EXPECT_GT(movement, r.prepCycles / 2);
}

TEST_F(SimFixture, SuperNpuEliminatesPsumMoves)
{
    const NpuEstimate base = estimate(NpuConfig::baseline());
    const NpuEstimate super = estimate(NpuConfig::superNpu());
    NpuSimulator sim_b(base), sim_s(super);
    const dnn::Network net = dnn::makeResNet50();
    const SimResult rb = sim_b.run(net, 1);
    const SimResult rs = sim_s.run(net, 1);
    EXPECT_LT(rs.prep.psumMove, rb.prep.psumMove / 100);
}

TEST_F(SimFixture, UtilizationNeverExceedsOne)
{
    for (const NpuConfig &config :
         {NpuConfig::baseline(), NpuConfig::superNpu()}) {
        const NpuEstimate est = estimate(config);
        NpuSimulator sim(est);
        for (const auto &net : dnn::evaluationWorkloads()) {
            const SimResult r = sim.run(net, 2);
            EXPECT_LE(r.peUtilization(config.peCount()), 1.0)
                << net.name;
            EXPECT_GT(r.totalCycles, 0ull) << net.name;
        }
    }
}

TEST_F(SimFixture, DramTrafficIncludesWeightsAtLeastOnce)
{
    const NpuEstimate est = estimate(NpuConfig::superNpu());
    NpuSimulator sim(est);
    for (const auto &net : dnn::evaluationWorkloads()) {
        const SimResult r = sim.run(net, 1);
        EXPECT_GE(r.dramBytes, net.totalWeightBytes()) << net.name;
    }
}

// --- Fig. 15: preparation dominates the Baseline ------------------------------

TEST_F(SimFixture, BaselinePreparationAboveNinetyPercent)
{
    const NpuEstimate est = estimate(NpuConfig::baseline());
    NpuSimulator sim(est);
    for (const auto &net : dnn::evaluationWorkloads()) {
        const SimResult r = sim.run(net, 1);
        EXPECT_GT(r.preparationFraction(), 0.90) << net.name;
    }
}

TEST_F(SimFixture, SuperNpuPreparationMuchLower)
{
    const NpuEstimate base = estimate(NpuConfig::baseline());
    const NpuEstimate super = estimate(NpuConfig::superNpu());
    NpuSimulator sim_b(base), sim_s(super);
    const dnn::Network net = dnn::makeResNet50();
    EXPECT_LT(sim_s.run(net, 30).preparationFraction(),
              sim_b.run(net, 1).preparationFraction());
}

// --- optimization-step orderings (Figs. 20-23 mechanics) ----------------------

namespace {

/** Average effective MAC/s over the six workloads at max batch. */
double
averagePerf(const NpuEstimator &estimator, const NpuConfig &config)
{
    const NpuEstimate est = estimator.estimate(config);
    NpuSimulator sim(est);
    double total = 0.0;
    const auto nets = dnn::evaluationWorkloads();
    for (const auto &net : nets) {
        const int batch = maxBatch(config, est, net);
        total += sim.run(net, batch).effectiveMacPerSec();
    }
    return total / (double)nets.size();
}

} // namespace

TEST_F(SimFixture, EachOptimizationStepHelps)
{
    const double base = averagePerf(estimator, NpuConfig::baseline());
    const double buffer = averagePerf(estimator, NpuConfig::bufferOpt());
    const double resource =
        averagePerf(estimator, NpuConfig::resourceOpt());
    const double super = averagePerf(estimator, NpuConfig::superNpu());
    EXPECT_GT(buffer, 4.0 * base);
    EXPECT_GT(resource, buffer);
    EXPECT_GT(super, resource);
}

TEST_F(SimFixture, DivisionImprovesSingleBatchPerformance)
{
    // Fig. 20's single-batch series: more chunks, shorter moves.
    const dnn::Network net = dnn::makeVgg16();
    double prev = 0.0;
    for (int division : {1, 4, 64}) {
        NpuConfig config = NpuConfig::baseline();
        config.name = "div";
        config.integratedOutputBuffer = division > 1;
        if (division > 1) {
            config.outputBufferBytes = 12 * units::MiB;
            config.ifmapBufferBytes = 12 * units::MiB;
            config.psumBufferBytes = 0;
            config.ofmapBufferBytes = 0;
        }
        config.ifmapDivision = division;
        config.outputDivision = division;
        const NpuEstimate est = estimate(config);
        NpuSimulator sim(est);
        const double perf = sim.run(net, 1).effectiveMacPerSec();
        EXPECT_GT(perf, prev) << "division " << division;
        prev = perf;
    }
}

TEST_F(SimFixture, IntegrationRemovesPsumMoves)
{
    // A many-row-fold layer exercises psum movement heavily.
    dnn::Network net;
    net.name = "deepC";
    net.layers = {dnn::conv("c", 512, 14, 128, 3)};

    NpuConfig separate = NpuConfig::baseline();
    NpuConfig integrated = NpuConfig::baseline();
    integrated.integratedOutputBuffer = true;
    integrated.outputBufferBytes = 16 * units::MiB;
    integrated.psumBufferBytes = 0;
    integrated.ofmapBufferBytes = 0;

    NpuSimulator sim_sep(estimate(separate));
    NpuSimulator sim_int(estimate(integrated));
    EXPECT_LT(sim_int.run(net, 1).prepCycles,
              sim_sep.run(net, 1).prepCycles / 2);
}

TEST_F(SimFixture, RegistersHelpManyFilterLayers)
{
    // Fig. 22's mechanism: with K >> width, weight registers cut the
    // column folds and the per-fold preparation.
    dnn::Network net;
    net.name = "manyK";
    net.layers = {dnn::conv("c", 256, 14, 2048, 3)};

    NpuConfig one = NpuConfig::resourceOpt();
    NpuConfig eight = NpuConfig::superNpu();
    NpuSimulator sim_one(estimate(one));
    NpuSimulator sim_eight(estimate(eight));
    const double p1 = sim_one.run(net, 8).effectiveMacPerSec();
    const double p8 = sim_eight.run(net, 8).effectiveMacPerSec();
    EXPECT_GT(p8, p1);
}

TEST_F(SimFixture, BatchRaisesThroughput)
{
    const NpuEstimate est = estimate(NpuConfig::superNpu());
    NpuSimulator sim(est);
    const dnn::Network net = dnn::makeAlexNet();
    const double b1 = sim.run(net, 1).effectiveMacPerSec();
    const double b30 = sim.run(net, 30).effectiveMacPerSec();
    EXPECT_GT(b30, 2.0 * b1);
}

TEST_F(SimFixture, OnChipChainingBeatsDramRefetch)
{
    const NpuEstimate est = estimate(NpuConfig::superNpu());
    NpuSimulator sim(est);
    const dnn::Layer layer = dnn::conv("c", 256, 28, 256, 3);
    const LayerResult cold = sim.simulateLayer(layer, 4, false);
    const LayerResult warm = sim.simulateLayer(layer, 4, true);
    EXPECT_LT(warm.totalCycles(), cold.totalCycles());
    EXPECT_LT(warm.dramBytes, cold.dramBytes);
}

// --- weight double-buffering (prev-mapping overlap) --------------------

TEST_F(SimFixture, DoubleBufferingHidesBehindPreviousMapping)
{
    // Regression: the fetch overlaps the compute of the mapping
    // simulated *before* it — zero before the first mapping (nothing
    // to hide behind), then the actual previous mapping's compute.
    // Pin the prep cycles of a 2-mapping layer analytically.
    NpuConfig config = NpuConfig::superNpu();
    config.weightDoubleBuffering = true;
    const NpuEstimate est = estimate(config);
    NpuSimulator sim(est);

    // 16 in-channels * 3x3 = 144 rows (one row fold on the 256-high
    // array); 1024 filters over 64 cols * 8 regs = two column folds.
    const dnn::Layer layer = dnn::conv("c", 16, 7, 1024, 3);
    const MappingPlan plan = MappingPlan::build(layer, config);
    ASSERT_EQ(plan.mappings.size(), 2u);

    const int batch = 2;
    const double cycles_per_byte =
        est.frequencyGhz * 1e9 / config.memoryBandwidth;
    const double shift = (double)(config.peHeight + config.peWidth);
    const std::uint64_t overhead = (std::uint64_t)(
        config.peHeight + config.peWidth + 2 * config.bitWidth - 1);
    const auto compute_of = [&](const WeightMapping &mapping) {
        return layer.outputPositions() * (std::uint64_t)batch *
                   mapping.regsUsed +
               overhead;
    };

    // First mapping: nothing precedes it, the full fetch is exposed.
    const double dram0 =
        (double)plan.mappings[0].weightBytes() * cycles_per_byte;
    // Second mapping: the fetch hides behind mapping 0's compute.
    const double dram1 = std::max(
        0.0, (double)plan.mappings[1].weightBytes() * cycles_per_byte -
                 (double)compute_of(plan.mappings[0]));
    const std::uint64_t expected =
        (std::uint64_t)std::max(shift, dram0) +
        (std::uint64_t)std::max(shift, dram1);

    const LayerResult res = sim.simulateLayer(layer, batch);
    EXPECT_EQ(res.prep.weightLoad, expected);
    EXPECT_EQ(res.lastMappingComputeCycles,
              compute_of(plan.mappings[1]));
}

TEST_F(SimFixture, FirstFetchOfTheRunHidesNothing)
{
    // The buggy accounting claimed overlap on the very first mapping
    // of the run; with the fix, a seeded previous compute lowers the
    // weight-load cost by exactly that amount (while the fetch stays
    // bandwidth-bound), and the default seed of zero lowers nothing.
    NpuConfig config = NpuConfig::superNpu();
    config.weightDoubleBuffering = true;
    const NpuEstimate est = estimate(config);
    NpuSimulator sim(est);

    const dnn::Layer layer = dnn::conv("c", 16, 7, 512, 3);
    const std::uint64_t hide = 1000;
    const LayerResult cold = sim.simulateLayer(layer, 1);
    const LayerResult warm = sim.simulateLayer(layer, 1, false, hide);
    EXPECT_EQ(cold.prep.weightLoad - warm.prep.weightLoad, hide);
}

TEST_F(SimFixture, RunThreadsOverlapAcrossLayers)
{
    // run() seeds each layer's first fetch with the previous layer's
    // last mapping compute — the whole-network totals must reconcile
    // with per-layer calls threaded the same way.
    NpuConfig config = NpuConfig::superNpu();
    config.weightDoubleBuffering = true;
    const NpuEstimate est = estimate(config);
    NpuSimulator sim(est);

    dnn::Network net;
    net.name = "chain";
    net.layers = {dnn::conv("a", 16, 7, 512, 3),
                  dnn::conv("b", 512, 7, 512, 3)};
    net.check();

    const SimResult whole = sim.run(net, 1);
    const LayerResult a = sim.simulateLayer(net.layers[0], 1, false, 0);
    const LayerResult b = sim.simulateLayer(
        net.layers[1], 1, a.outputOnChip, a.lastMappingComputeCycles);
    EXPECT_EQ(whole.layers[0].prep.weightLoad, a.prep.weightLoad);
    EXPECT_EQ(whole.layers[1].prep.weightLoad, b.prep.weightLoad);

    // Ignoring the cross-layer seed would overstate the second
    // layer's exposed fetch.
    const LayerResult b_unseeded =
        sim.simulateLayer(net.layers[1], 1, a.outputOnChip, 0);
    EXPECT_GT(b_unseeded.prep.weightLoad, b.prep.weightLoad);
}

TEST_F(SimFixture, DepthwiseUnderutilizesThePeArray)
{
    const NpuEstimate est = estimate(NpuConfig::superNpu());
    NpuSimulator sim(est);
    const dnn::Layer dw = dnn::depthwise("dw", 256, 14, 1);
    const dnn::Layer pw = dnn::conv("pw", 256, 14, 256, 1, 1, 0);
    const LayerResult rdw = sim.simulateLayer(dw, 4);
    const LayerResult rpw = sim.simulateLayer(pw, 4);
    const double util_dw =
        (double)rdw.macOps / (double)rdw.totalCycles();
    const double util_pw =
        (double)rpw.macOps / (double)rpw.totalCycles();
    EXPECT_LT(util_dw, util_pw / 10.0);
}

} // namespace
} // namespace npusim
} // namespace supernpu
