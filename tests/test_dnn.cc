/**
 * @file
 * Tests for the DNN layer arithmetic, the workload zoo, and the
 * duplication / intensity analyses (paper Figs. 8 and 17 inputs).
 */

#include <gtest/gtest.h>

#include "dnn/analysis.hh"
#include "dnn/layer.hh"
#include "dnn/networks.hh"

namespace supernpu {
namespace dnn {
namespace {

// --- layer arithmetic ---------------------------------------------------

TEST(Layer, ConvOutputDims)
{
    const Layer l = conv("c", 3, 227, 96, 11, 4, 0);
    EXPECT_EQ(l.outHeight(), 55);
    EXPECT_EQ(l.outWidth(), 55);
    EXPECT_EQ(l.outputPositions(), 55ull * 55ull);
}

TEST(Layer, SamePaddingKeepsSize)
{
    const Layer l = conv("c", 64, 56, 128, 3); // default padding
    EXPECT_EQ(l.padding, 1);
    EXPECT_EQ(l.outHeight(), 56);
}

TEST(Layer, MacCountConv)
{
    const Layer l = conv("c", 2, 4, 3, 3, 1, 1); // out 4x4
    // 3*3*2 per position per filter x 16 positions x 3 filters.
    EXPECT_EQ(l.macCount(), 18ull * 16ull * 3ull);
}

TEST(Layer, MacCountDepthwise)
{
    const Layer l = depthwise("dw", 8, 10, 1); // out 10x10
    EXPECT_EQ(l.macCount(), 9ull * 8ull * 100ull);
    EXPECT_EQ(l.mappedFilters(), 1);
    EXPECT_EQ(l.weightsPerFilter(), 9ull);
}

TEST(Layer, FullyConnectedAsConv)
{
    const Layer l = fullyConnected("fc", 4096, 1000);
    EXPECT_EQ(l.macCount(), 4096ull * 1000ull);
    EXPECT_EQ(l.weightBytes(), 4096ull * 1000ull);
    EXPECT_EQ(l.outputPositions(), 1ull);
    EXPECT_EQ(l.ifmapBytes(), 4096ull);
    EXPECT_EQ(l.ofmapBytes(), 1000ull);
}

TEST(Layer, FootprintBytes)
{
    const Layer l = conv("c", 96, 55, 256, 5);
    EXPECT_EQ(l.ifmapBytes(), 96ull * 55 * 55);
    EXPECT_EQ(l.ofmapBytes(), 256ull * 55 * 55);
    EXPECT_EQ(l.weightBytes(), 5ull * 5 * 96 * 256);
}

TEST(LayerDeath, RejectsMalformedShapes)
{
    Layer l = conv("ok", 3, 8, 4, 3);
    l.inChannels = 0;
    EXPECT_DEATH(l.check(), "bad input shape");
    Layer k = conv("ok", 3, 8, 4, 3);
    k.stride = 0;
    EXPECT_DEATH(k.check(), "bad kernel");
}

TEST(LayerDeath, DepthwiseMustKeepChannels)
{
    Layer l = depthwise("dw", 8, 10, 1);
    l.outChannels = 4;
    EXPECT_DEATH(l.check(), "channel count");
}

// --- the workload zoo -----------------------------------------------------

/** Every evaluation network passes validation and has sane totals. */
class WorkloadZoo : public ::testing::TestWithParam<int>
{
  protected:
    Network
    net() const
    {
        return evaluationWorkloads()[(std::size_t)GetParam()];
    }
};

TEST_P(WorkloadZoo, ValidatesAndHasWork)
{
    const Network network = net();
    network.check();
    EXPECT_GT(network.totalMacs(), 100ull * 1000 * 1000);
    EXPECT_GT(network.totalWeightBytes(), 1000ull * 1000);
    EXPECT_GT(network.maxLayerIoBytes(), 0ull);
}

INSTANTIATE_TEST_SUITE_P(AllSix, WorkloadZoo,
                         ::testing::Range(0, 6));

TEST(WorkloadZoo, SixWorkloadsInPaperOrder)
{
    const auto nets = evaluationWorkloads();
    ASSERT_EQ(nets.size(), 6u);
    EXPECT_EQ(nets[0].name, "AlexNet");
    EXPECT_EQ(nets[1].name, "FasterRCNN");
    EXPECT_EQ(nets[2].name, "GoogLeNet");
    EXPECT_EQ(nets[3].name, "MobileNet");
    EXPECT_EQ(nets[4].name, "ResNet50");
    EXPECT_EQ(nets[5].name, "VGG16");
}

TEST(WorkloadZoo, Vgg16KnownTotals)
{
    const Network net = makeVgg16();
    // 13 convs + 3 FCs; ~15.3 GMAC of conv + ~0.12 GMAC of FC.
    EXPECT_EQ(net.layers.size(), 16u);
    EXPECT_NEAR((double)net.totalMacs(), 15.47e9, 0.3e9);
    // ~138 M parameters, most in fc6.
    EXPECT_NEAR((double)net.totalWeightBytes(), 138.3e6, 2e6);
}

TEST(WorkloadZoo, ResNet50KnownTotals)
{
    const Network net = makeResNet50();
    // 53 convs + 1 FC = 54 weight layers; ~4 GMAC.
    EXPECT_EQ(net.layers.size(), 54u);
    EXPECT_NEAR((double)net.totalMacs(), 4.1e9, 0.4e9);
}

TEST(WorkloadZoo, MobileNetKnownTotals)
{
    const Network net = makeMobileNet();
    // conv1 + 13 x (dw + pw) + fc = 28 layers; ~0.57 GMAC.
    EXPECT_EQ(net.layers.size(), 28u);
    EXPECT_NEAR((double)net.totalMacs(), 0.57e9, 0.06e9);
    // Depthwise layers present.
    int dw = 0;
    for (const auto &l : net.layers)
        dw += l.kind == LayerKind::DepthwiseConv;
    EXPECT_EQ(dw, 13);
}

TEST(WorkloadZoo, AlexNetPaperVariantLargestLayer)
{
    const Network net = makeAlexNet();
    // The paper quotes 1.05 MB for the second layer's ifmap+ofmap,
    // which pins conv2 at 55 x 55 (see networks.cc).
    EXPECT_NEAR((double)net.maxLayerIoBytes(), 1.05e6, 0.03e6);
}

TEST(WorkloadZoo, GoogLeNetInceptionStructure)
{
    const Network net = makeGoogLeNet();
    // 3 stem convs + 9 inceptions x 6 + 1 fc.
    EXPECT_EQ(net.layers.size(), 3u + 9u * 6u + 1u);
    EXPECT_NEAR((double)net.totalMacs(), 1.58e9, 0.25e9);
}

TEST(WorkloadZoo, ResNet18KnownTotals)
{
    const Network net = makeResNet18();
    // stem + 8 basic blocks (16 convs) + 3 projections + fc.
    EXPECT_EQ(net.layers.size(), 1u + 16u + 3u + 1u);
    EXPECT_NEAR((double)net.totalMacs(), 1.82e9, 0.2e9);
    EXPECT_NEAR((double)net.totalWeightBytes(), 11.5e6, 1e6);
}

TEST(WorkloadZoo, Vgg19KnownTotals)
{
    const Network net = makeVgg19();
    EXPECT_EQ(net.layers.size(), 19u);
    EXPECT_NEAR((double)net.totalMacs(), 19.6e9, 0.5e9);
    // VGG19 has ~5.7 M more conv weights than VGG16, same FC stack.
    EXPECT_GT(net.totalWeightBytes(), makeVgg16().totalWeightBytes());
}

TEST(WorkloadZoo, FasterRcnnExtendsVggBackbone)
{
    const Network net = makeFasterRcnn();
    EXPECT_GT(net.layers.size(), 16u);
    // The RPN conv exists on the 14x14 map.
    bool has_rpn = false;
    for (const auto &l : net.layers)
        has_rpn |= l.name == "rpn_conv";
    EXPECT_TRUE(has_rpn);
}

// --- duplication analysis (Fig. 8) -----------------------------------------

TEST(Duplication, SingleLayerRatioMatchesFormula)
{
    // 3x3 stride-1 same-padded conv: each pixel is read ~9 times.
    const Layer l = conv("c", 16, 32, 16, 3);
    const DuplicationStats stats = layerDuplication(l);
    EXPECT_EQ(stats.uniquePixels, 16ull * 32 * 32);
    EXPECT_EQ(stats.naivePixels, 9ull * 16 * 32 * 32);
    EXPECT_NEAR(stats.duplicatedRatio(), 8.0 / 9.0, 1e-12);
}

TEST(Duplication, OneByOneConvHasNoDuplication)
{
    const Layer l = conv("c", 64, 28, 128, 1, 1, 0);
    EXPECT_NEAR(layerDuplication(l).duplicatedRatio(), 0.0, 1e-12);
}

TEST(Duplication, StridedConvDuplicatesLess)
{
    const Layer dense = conv("d", 3, 224, 64, 7, 1, 3);
    const Layer strided = conv("s", 3, 224, 64, 7, 2, 3);
    EXPECT_GT(layerDuplication(dense).duplicatedRatio(),
              layerDuplication(strided).duplicatedRatio());
}

/** Fig. 8: the three named networks duplicate > 85 % of pixels. */
class Fig8Networks : public ::testing::TestWithParam<const char *>
{
};

TEST_P(Fig8Networks, DuplicationAboveEightyFivePercent)
{
    for (const auto &net : evaluationWorkloads()) {
        if (net.name != GetParam())
            continue;
        const double ratio =
            networkDuplicatedRatio(net, /*spatial_only=*/true);
        EXPECT_GT(ratio, 0.85) << net.name;
        EXPECT_LT(ratio, 1.0) << net.name;
        // The all-layer ratio includes 1x1 convolutions, which have
        // no weight sharing: it is lower but still substantial.
        EXPECT_GT(networkDuplicatedRatio(net), 0.4) << net.name;
        return;
    }
    FAIL() << "workload not found";
}

INSTANTIATE_TEST_SUITE_P(PaperTrio, Fig8Networks,
                         ::testing::Values("AlexNet", "ResNet50",
                                           "VGG16"));

// --- intensity / roofline (Fig. 17) ----------------------------------------

TEST(Intensity, ScalesLinearlyWithBatch)
{
    const Network net = makeResNet50();
    const double i1 = computationalIntensity(net, 1);
    const double i8 = computationalIntensity(net, 8);
    EXPECT_NEAR(i8, 8.0 * i1, 1e-9 * i8);
}

TEST(Intensity, FcHeavyNetworksHaveLowIntensity)
{
    // VGG16's FC layers dominate its weights: single-batch intensity
    // is far below a conv-only network's.
    const double vgg = computationalIntensity(makeVgg16(), 1);
    const double resnet = computationalIntensity(makeResNet50(), 1);
    EXPECT_LT(vgg, resnet);
}

TEST(Roofline, MinOfPeakAndBandwidthBound)
{
    const double peak = 3366e12;
    const double bw = 300e9;
    EXPECT_DOUBLE_EQ(rooflinePerformance(peak, 10.0, bw), 10.0 * bw);
    EXPECT_DOUBLE_EQ(rooflinePerformance(peak, 1e9, bw), peak);
}

TEST(Roofline, SingleBatchUtilizationBelowTwoPercent)
{
    // Fig. 17: single-batch roofline utilization averages < 2 % of
    // the Baseline's 3.4 PMAC/s peak.
    const double peak = 3447e12;
    const double bw = 300e9;
    double total = 0.0;
    const auto nets = evaluationWorkloads();
    for (const auto &net : nets) {
        const double intensity = computationalIntensity(net, 1);
        total += rooflinePerformance(peak, intensity, bw) / peak;
    }
    EXPECT_LT(total / (double)nets.size(), 0.02);
}

} // namespace
} // namespace dnn
} // namespace supernpu
