/**
 * @file
 * Tests for the functional NPU: tensor plumbing, the DAU's data
 * selection, the systolic array's cycle behaviour, and end-to-end
 * convolution correctness against the golden reference.
 */

#include <gtest/gtest.h>

#include "functional/dau.hh"
#include "functional/golden.hh"
#include "functional/npu.hh"
#include "functional/systolic.hh"
#include "functional/tensor.hh"

namespace supernpu {
namespace functional {
namespace {

// --- tensor -----------------------------------------------------------

TEST(Tensor, PaddedReadsReturnZeroOutside)
{
    Tensor3 t(1, 2, 2);
    t.at(0, 0, 0) = 7;
    EXPECT_EQ(t.atPadded(0, -1, 0), 0);
    EXPECT_EQ(t.atPadded(0, 0, 2), 0);
    EXPECT_EQ(t.atPadded(0, 0, 0), 7);
}

TEST(Tensor, RandomFillStaysInInt8Range)
{
    Rng rng;
    Tensor3 t(2, 5, 5);
    t.fillRandom(rng);
    for (int c = 0; c < 2; ++c) {
        for (int y = 0; y < 5; ++y) {
            for (int x = 0; x < 5; ++x) {
                EXPECT_GE(t.at(c, y, x), -128);
                EXPECT_LE(t.at(c, y, x), 127);
            }
        }
    }
}

TEST(TensorDeath, OutOfRangeAccessPanics)
{
    Tensor3 t(1, 2, 2);
    EXPECT_DEATH((void)t.at(0, 2, 0), "out of range");
}

// --- golden reference ---------------------------------------------------

TEST(Golden, HandComputedConv)
{
    // 1-channel 2x2 input, single 2x2 filter of ones, no padding:
    // output = sum of all inputs.
    Tensor3 ifmap(1, 2, 2);
    ifmap.at(0, 0, 0) = 1;
    ifmap.at(0, 0, 1) = 2;
    ifmap.at(0, 1, 0) = 3;
    ifmap.at(0, 1, 1) = 4;
    FilterBank bank;
    Tensor3 filter(1, 2, 2);
    filter.at(0, 0, 0) = 1;
    filter.at(0, 0, 1) = 1;
    filter.at(0, 1, 0) = 1;
    filter.at(0, 1, 1) = 1;
    bank.filters.push_back(filter);

    const Tensor3 out = convReference(ifmap, bank, ConvSpec{1, 0});
    ASSERT_EQ(out.height(), 1);
    ASSERT_EQ(out.width(), 1);
    EXPECT_EQ(out.at(0, 0, 0), 10);
}

TEST(Golden, IdentityFilterCopiesInput)
{
    Rng rng;
    Tensor3 ifmap(1, 4, 4);
    ifmap.fillRandom(rng);
    FilterBank bank;
    Tensor3 id(1, 1, 1);
    id.at(0, 0, 0) = 1;
    bank.filters.push_back(id);
    const Tensor3 out = convReference(ifmap, bank, ConvSpec{1, 0});
    EXPECT_TRUE(out == ifmap);
}

// --- DAU ------------------------------------------------------------------

TEST(Dau, EnumerationIsRasterOrder)
{
    const auto positions = enumerateWeightPositions(2, 2, 2);
    ASSERT_EQ(positions.size(), 8u);
    EXPECT_EQ(positions[0].channel, 0);
    EXPECT_EQ(positions[0].dy, 0);
    EXPECT_EQ(positions[0].dx, 0);
    EXPECT_EQ(positions[3].channel, 0);
    EXPECT_EQ(positions[3].dy, 1);
    EXPECT_EQ(positions[3].dx, 1);
    EXPECT_EQ(positions[4].channel, 1);
}

TEST(Dau, StreamsSelectTheFigNineExample)
{
    // The paper's Fig. 9: 3x3 ifmap (i1..i9), 2x2 kernel -> 4 output
    // positions. Row 0 (w1 at dy=0,dx=0) must stream i1, i2, i4, i5.
    Tensor3 ifmap(1, 3, 3);
    int v = 1;
    for (int y = 0; y < 3; ++y)
        for (int x = 0; x < 3; ++x)
            ifmap.at(0, y, x) = v++;

    const auto positions = enumerateWeightPositions(1, 2, 2);
    const auto streams =
        buildAlignedStreams(ifmap, positions, 2, 2, ConvSpec{1, 0});
    ASSERT_EQ(streams.size(), 4u);
    EXPECT_EQ(streams[0], (std::vector<std::int32_t>{1, 2, 4, 5}));
    // Row 3 (w4 at dy=1,dx=1) streams i5, i6, i8, i9.
    EXPECT_EQ(streams[3], (std::vector<std::int32_t>{5, 6, 8, 9}));
}

TEST(Dau, PaddingBecomesZeroBubbles)
{
    Tensor3 ifmap(1, 2, 2);
    ifmap.at(0, 0, 0) = 5;
    ifmap.at(0, 0, 1) = 6;
    ifmap.at(0, 1, 0) = 7;
    ifmap.at(0, 1, 1) = 8;
    const auto positions = enumerateWeightPositions(1, 3, 3);
    const auto streams =
        buildAlignedStreams(ifmap, positions, 3, 3, ConvSpec{1, 1});
    // Weight (0,0) reads the pixel one up-left of each output: for
    // output (0,0) that is outside -> bubble 0.
    EXPECT_EQ(streams[0][0], 0);
    // Weight (1,1) (center) reads the output position itself.
    EXPECT_EQ(streams[4][0], 5);
}

// --- systolic array ---------------------------------------------------------

TEST(Systolic, SingleCellMultiplies)
{
    SystolicArray array(1, 1);
    array.loadWeight(0, 0, 3);
    const auto out = array.step({4});
    EXPECT_EQ(out[0], 12);
}

TEST(Systolic, ColumnAccumulatesDownward)
{
    // 2x1 column with weights (2, 5): feed row 0 then row 1 skewed.
    SystolicArray array(2, 1);
    array.loadWeight(0, 0, 2);
    array.loadWeight(1, 0, 5);
    const auto out =
        array.streamThrough({{10}, {100}}); // one logical time step
    ASSERT_EQ(out.size(), 1u);
    ASSERT_EQ(out[0].size(), 1u);
    EXPECT_EQ(out[0][0], 2 * 10 + 5 * 100);
}

TEST(Systolic, StreamThroughMatchesDotProducts)
{
    // 3-row, 2-column array: out[c][t] = sum_r w[r][c] * in[r][t].
    SystolicArray array(3, 2);
    const std::int32_t weights[3][2] = {{1, -1}, {2, 0}, {-3, 4}};
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 2; ++c)
            array.loadWeight(r, c, weights[r][c]);

    const std::vector<std::vector<std::int32_t>> streams = {
        {5, 1, 0, 2}, {-1, 3, 7, 0}, {2, 2, -2, 1}};
    const auto out = array.streamThrough(streams);
    for (std::size_t t = 0; t < 4; ++t) {
        for (int c = 0; c < 2; ++c) {
            std::int64_t expect = 0;
            for (int r = 0; r < 3; ++r)
                expect += (std::int64_t)weights[r][c] *
                          streams[(std::size_t)r][t];
            EXPECT_EQ(out[(std::size_t)c][t], expect)
                << "t=" << t << " c=" << c;
        }
    }
}

TEST(Systolic, PipelineResetClearsState)
{
    SystolicArray array(2, 2);
    array.loadWeight(0, 0, 1);
    array.step({9, 9});
    array.resetPipeline();
    EXPECT_EQ(array.cyclesElapsed(), 0u);
    const auto out = array.step({0, 0});
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[1], 0);
}

TEST(SystolicDeath, WrongInputWidthPanics)
{
    SystolicArray array(3, 1);
    EXPECT_DEATH((void)array.step({1, 2}), "width mismatch");
}

// --- end-to-end conv correctness ------------------------------------------------

/** Shape x array-geometry sweep; every case must match the oracle. */
struct ConvCase
{
    int channels, in_hw, filters, kernel, stride, padding;
    int array_rows, array_cols;
};

class ConvAgainstGolden : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvAgainstGolden, ExactMatch)
{
    const ConvCase cs = GetParam();
    Rng rng(0xC0FFEEu + (unsigned)cs.channels * 131 +
            (unsigned)cs.kernel);
    Tensor3 ifmap(cs.channels, cs.in_hw, cs.in_hw);
    ifmap.fillRandom(rng);
    const FilterBank filters = FilterBank::random(
        cs.filters, cs.channels, cs.kernel, cs.kernel, rng);
    const ConvSpec spec{cs.stride, cs.padding};

    const Tensor3 golden = convReference(ifmap, filters, spec);
    FunctionalNpu npu(cs.array_rows, cs.array_cols);
    const FunctionalRunResult run = npu.conv(ifmap, filters, spec);

    EXPECT_TRUE(run.ofmap == golden);
    EXPECT_GT(run.arrayCycles, 0ull);

    // Mapping count agrees with the fold arithmetic.
    const std::uint64_t flen =
        (std::uint64_t)cs.channels * cs.kernel * cs.kernel;
    const std::uint64_t row_folds =
        (flen + cs.array_rows - 1) / cs.array_rows;
    const std::uint64_t col_folds =
        ((std::uint64_t)cs.filters + cs.array_cols - 1) / cs.array_cols;
    EXPECT_EQ(run.weightMappings, row_folds * col_folds);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, ConvAgainstGolden,
    ::testing::Values(
        // Single mapping: everything fits.
        ConvCase{3, 8, 4, 3, 1, 1, 27, 4},
        // Row folds only.
        ConvCase{4, 6, 2, 3, 1, 0, 8, 2},
        // Column folds only.
        ConvCase{2, 6, 9, 2, 1, 0, 8, 4},
        // Both fold dimensions.
        ConvCase{5, 7, 7, 3, 1, 1, 16, 3},
        // Strided.
        ConvCase{3, 9, 4, 3, 2, 0, 27, 2},
        // Strided and padded.
        ConvCase{2, 8, 3, 3, 2, 1, 6, 3},
        // 1x1 pointwise.
        ConvCase{16, 5, 8, 1, 1, 0, 16, 8},
        // Large kernel on a small array.
        ConvCase{1, 11, 2, 5, 1, 2, 5, 1},
        // Tall skinny array.
        ConvCase{8, 6, 3, 3, 1, 1, 72, 1},
        // Wide flat array.
        ConvCase{2, 6, 12, 2, 1, 0, 2, 16},
        // Strided 1x1 projection (ResNet shortcut shape).
        ConvCase{8, 8, 16, 1, 2, 0, 8, 8},
        // 5x5 kernel with heavy padding.
        ConvCase{3, 7, 4, 5, 1, 2, 25, 2},
        // Single-column array (pure accumulation chain).
        ConvCase{4, 5, 1, 3, 1, 1, 36, 1},
        // Single-row array (every weight position its own mapping).
        ConvCase{2, 5, 3, 2, 1, 0, 1, 3},
        // Asymmetric stride-2 7x7 stem (ResNet conv1 shape).
        ConvCase{3, 15, 8, 7, 2, 3, 49, 4},
        // Exactly array-sized filter length (no fold remainder).
        ConvCase{4, 6, 4, 2, 1, 0, 16, 4}));

TEST(ConvAgainstGoldenExtra, WeightLoadCyclesFollowArrayGeometry)
{
    Rng rng(3);
    Tensor3 ifmap(4, 6, 6);
    ifmap.fillRandom(rng);
    const FilterBank filters = FilterBank::random(6, 4, 3, 3, rng);
    FunctionalNpu npu(16, 2); // 36/16 = 3 row folds, 6/2 = 3 col folds
    const auto run = npu.conv(ifmap, filters, ConvSpec{1, 1});
    EXPECT_EQ(run.weightMappings, 9ull);
    // rows + cols per mapping, the performance model's charge.
    EXPECT_EQ(run.weightLoadCycles, 9ull * (16 + 2));
}

TEST(ConvAgainstGoldenExtra, FullyConnectedAsOneByOne)
{
    // FC = 1x1 conv on a 1x1 "image" with many channels.
    Rng rng(7);
    Tensor3 ifmap(64, 1, 1);
    ifmap.fillRandom(rng);
    const FilterBank filters = FilterBank::random(10, 64, 1, 1, rng);
    const ConvSpec spec{1, 0};
    const Tensor3 golden = convReference(ifmap, filters, spec);
    FunctionalNpu npu(32, 4); // folds in both dimensions
    EXPECT_TRUE(npu.conv(ifmap, filters, spec).ofmap == golden);
}

TEST(ConvAgainstGoldenExtra, DepthwiseAsPerChannelConvs)
{
    // Depthwise = per-channel single-filter convolutions.
    Rng rng(11);
    const int channels = 4;
    Tensor3 ifmap(channels, 6, 6);
    ifmap.fillRandom(rng);

    FunctionalNpu npu(9, 2);
    for (int c = 0; c < channels; ++c) {
        Tensor3 channel(1, 6, 6);
        for (int y = 0; y < 6; ++y)
            for (int x = 0; x < 6; ++x)
                channel.at(0, y, x) = ifmap.at(c, y, x);
        const FilterBank bank = FilterBank::random(1, 1, 3, 3, rng);
        const ConvSpec spec{1, 1};
        EXPECT_TRUE(npu.conv(channel, bank, spec).ofmap ==
                    convReference(channel, bank, spec));
    }
}

} // namespace
} // namespace functional
} // namespace supernpu
