/**
 * @file
 * Tests for the SFQ-NPU estimator: microarchitecture unit models,
 * architecture-level roll-up (Table I), and the Fig. 13 validation.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "estimator/buffer_model.hh"
#include "estimator/dau_model.hh"
#include "estimator/io_model.hh"
#include "estimator/network_model.hh"
#include "estimator/npu_config.hh"
#include "estimator/npu_estimator.hh"
#include "estimator/offchip_memory.hh"
#include "estimator/pe_model.hh"
#include "estimator/validation.hh"

namespace supernpu {
namespace estimator {
namespace {

class EstimatorFixture : public ::testing::Test
{
  protected:
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib{dev};
    NpuEstimator estimator{lib};
};

// --- PE model --------------------------------------------------------------

TEST_F(EstimatorFixture, PePipelineStagesMatchPaper)
{
    // "our 8-bit PE consists of 15 pipeline stages" (Section III-C).
    EXPECT_EQ(PeModel(lib, 8, 1).pipelineStages(), 15);
    EXPECT_EQ(PeModel(lib, 4, 1).pipelineStages(), 7);
}

TEST_F(EstimatorFixture, EightBitPeClocksAtPaperFrequency)
{
    PeModel pe(lib, 8, 1);
    EXPECT_NEAR(pe.frequencyGhz(), 52.6, 0.5);
}

TEST_F(EstimatorFixture, NarrowerPeClocksFaster)
{
    EXPECT_GT(PeModel(lib, 4, 1).frequencyGhz(),
              PeModel(lib, 8, 1).frequencyGhz());
}

TEST_F(EstimatorFixture, RegistersAddJjsNotDelay)
{
    PeModel one(lib, 8, 1), eight(lib, 8, 8);
    EXPECT_GT(eight.jjCount(), one.jjCount());
    EXPECT_DOUBLE_EQ(eight.frequencyGhz(), one.frequencyGhz());
    // 7 extra NDRO bytes per PE, a small fraction of the MAC logic.
    EXPECT_LT((double)(eight.jjCount() - one.jjCount()),
              0.1 * (double)one.jjCount());
}

TEST_F(EstimatorFixture, PeEnergyAndPowerArePositive)
{
    PeModel pe(lib, 8, 1);
    EXPECT_GT(pe.macEnergy(), 0.0);
    EXPECT_LT(pe.macEnergy(), 1e-12); // well below a picojoule
    EXPECT_GT(pe.staticPower(), 0.0);
    EXPECT_GT(pe.area(), 0.0);
}

// --- buffer model ------------------------------------------------------------

TEST_F(EstimatorFixture, BufferGeometryMatchesPaperExample)
{
    // The paper's Fig. 16 example: a 16 MB buffer pair moving at
    // 256 B/cycle costs 65,536 cycles; each 8 MB buffer with 256
    // one-byte rows is 32,768 entries long.
    BufferModel buf(lib, 8 * units::MiB, 256, 8, 1);
    EXPECT_EQ(buf.rowLengthEntries(), 32768ull);
    EXPECT_EQ(buf.bytesPerCycle(), 256ull);
    EXPECT_EQ(2 * buf.rowLengthEntries(), 65536ull);
}

TEST_F(EstimatorFixture, DivisionShortensChunks)
{
    BufferModel whole(lib, 12 * units::MiB, 256, 8, 1);
    BufferModel divided(lib, 12 * units::MiB, 256, 8, 64);
    EXPECT_EQ(divided.chunkLengthEntries(),
              whole.rowLengthEntries() / 64);
}

TEST_F(EstimatorFixture, BufferRunsAtCounterFlowFrequency)
{
    BufferModel buf(lib, 8 * units::MiB, 256, 8, 1);
    // Fig. 7(c): the feedback-looped shift register clocks ~71 GHz.
    EXPECT_NEAR(buf.frequencyGhz(), 71.0, 3.0);
}

TEST_F(EstimatorFixture, MuxTreeCostsNothingUndivided)
{
    BufferModel whole(lib, 12 * units::MiB, 256, 8, 1);
    EXPECT_EQ(whole.muxTreeJjCount(), 0ull);
}

TEST_F(EstimatorFixture, MuxTreeGrowsWithDivision)
{
    std::uint64_t prev = 0;
    for (int division : {2, 16, 256, 4096}) {
        BufferModel buf(lib, 12 * units::MiB, 256, 8, division);
        EXPECT_GT(buf.muxTreeJjCount(), prev);
        prev = buf.muxTreeJjCount();
    }
}

TEST_F(EstimatorFixture, ChunkShiftEnergyScalesWithChunkSize)
{
    BufferModel coarse(lib, 12 * units::MiB, 256, 8, 4);
    BufferModel fine(lib, 12 * units::MiB, 256, 8, 256);
    EXPECT_NEAR(coarse.chunkShiftEnergy() / fine.chunkShiftEnergy(),
                64.0, 0.5);
}

TEST_F(EstimatorFixture, BufferAreaUsesMemoryDensity)
{
    BufferModel buf(lib, 12 * units::MiB, 256, 8, 1);
    const double bits = 12.0 * (double)units::MiB * 8.0;
    EXPECT_LT(buf.area(), bits * 14.0 * lib.areaPerJj());
    EXPECT_GT(buf.area(), 0.0);
}

// --- network models (Figs. 4-5) ------------------------------------------------

TEST_F(EstimatorFixture, SystolicDelayFlatAcrossWidths)
{
    NetworkUnitModel narrow(lib, NetworkDesign::Systolic2D, 4, 8);
    NetworkUnitModel wide(lib, NetworkDesign::Systolic2D, 64, 8);
    EXPECT_DOUBLE_EQ(narrow.criticalPathPs(), wide.criticalPathPs());
}

TEST_F(EstimatorFixture, TwoDTreeDelayGrowsLinearly)
{
    NetworkUnitModel w16(lib, NetworkDesign::SplitterTree2D, 16, 8);
    NetworkUnitModel w64(lib, NetworkDesign::SplitterTree2D, 64, 8);
    EXPECT_GT(w64.criticalPathPs(), 3.5 * w16.criticalPathPs());
    // Fig. 5(a): above 800 ps at a 64-wide array.
    EXPECT_GT(w64.criticalPathPs(), 800.0);
}

TEST_F(EstimatorFixture, SystolicWinsOnDelayAndArea)
{
    for (int width : {4, 16, 64}) {
        NetworkUnitModel t2(lib, NetworkDesign::SplitterTree2D, width, 8);
        NetworkUnitModel t1(lib, NetworkDesign::SplitterTree1D, width, 8);
        NetworkUnitModel sy(lib, NetworkDesign::Systolic2D, width, 8);
        EXPECT_LE(sy.criticalPathPs(), t1.criticalPathPs()) << width;
        EXPECT_LT(sy.criticalPathPs(), t2.criticalPathPs()) << width;
        if (width >= 16) {
            EXPECT_LT(sy.area(), t1.area()) << width;
            EXPECT_LT(sy.area(), t2.area()) << width;
        }
    }
}

TEST_F(EstimatorFixture, TreeAreasSimilarAtSixtyFour)
{
    // Fig. 5(b): the two tree designs have similarly large areas.
    NetworkUnitModel t2(lib, NetworkDesign::SplitterTree2D, 64, 8);
    NetworkUnitModel t1(lib, NetworkDesign::SplitterTree1D, 64, 8);
    EXPECT_NEAR(t2.area() / t1.area(), 1.1, 0.15);
}

// --- DAU --------------------------------------------------------------------

TEST_F(EstimatorFixture, DauIsNotTheClockBottleneck)
{
    DauModel dau(lib, 256, 8, 15);
    EXPECT_GT(dau.frequencyGhz(), 52.6);
    EXPECT_GT(dau.jjCount(), 0ull);
    EXPECT_GT(dau.forwardEnergy(), 0.0);
}

TEST_F(EstimatorFixture, DauScalesWithRowsAndPipeline)
{
    DauModel small(lib, 64, 8, 15);
    DauModel tall(lib, 256, 8, 15);
    DauModel deep(lib, 64, 8, 31);
    EXPECT_GT(tall.jjCount(), small.jjCount());
    EXPECT_GT(deep.jjCount(), small.jjCount());
}

// --- chip interface circuitry -----------------------------------------------

TEST_F(EstimatorFixture, IoModelScalesWithPortWidth)
{
    IoModel wide(lib, NpuConfig::baseline());   // 256-wide
    IoModel narrow(lib, NpuConfig::superNpu()); // 64-wide
    EXPECT_GT(wide.outputAmplifierCount(),
              narrow.outputAmplifierCount());
    EXPECT_GT(wide.jjCount(), narrow.jjCount());
}

TEST_F(EstimatorFixture, OutputAmplifiersDominateIoStaticPower)
{
    IoModel io(lib, NpuConfig::superNpu());
    const double amp_power =
        (double)io.outputAmplifierCount() *
        lib.staticPower(sfq::GateKind::SFQDC);
    EXPECT_GT(amp_power, 0.5 * io.staticPower());
}

TEST_F(EstimatorFixture, IoIsNegligibleAgainstTheBuffers)
{
    // The interface circuitry must not disturb the Table I / III
    // calibrations: well below 1% of the chip's junctions and power.
    const NpuEstimate est = estimator.estimate(NpuConfig::superNpu());
    for (const auto &unit : est.units) {
        if (unit.name != "I/O + clkgen")
            continue;
        EXPECT_LT((double)unit.jjCount, 0.01 * (double)est.jjCount);
        EXPECT_LT(unit.staticPowerW, 0.01 * est.staticPowerW);
        return;
    }
    FAIL() << "I/O unit missing from the estimate";
}

// --- off-chip memory survey ---------------------------------------------------

TEST(OffChipMemory, SurveyCoversAllFourTechnologies)
{
    const auto survey = OffChipMemoryModel::surveyAll();
    ASSERT_EQ(survey.size(), 4u);
    int practical = 0;
    for (const auto &m : survey)
        practical += m.practical;
    // Section II-B4's conclusion: only CMOS DRAM is practical.
    EXPECT_EQ(practical, 1);
    EXPECT_TRUE(
        OffChipMemoryModel::survey(OffChipKind::CmosDram).practical);
}

TEST(OffChipMemory, JjMemoriesAreCryogenicButTiny)
{
    for (OffChipKind kind :
         {OffChipKind::VortexTransition,
          OffChipKind::JosephsonCmosHybrid,
          OffChipKind::JosephsonMagnetic}) {
        const auto m = OffChipMemoryModel::survey(kind);
        EXPECT_TRUE(m.cryogenic) << offChipKindName(kind);
        // Thousands of modules for one ResNet-50 weight set.
        EXPECT_GT(m.modulesForCapacity(25u << 20), 1000u)
            << offChipKindName(kind);
    }
    const auto dram = OffChipMemoryModel::survey(OffChipKind::CmosDram);
    EXPECT_EQ(dram.modulesForCapacity(25u << 20), 1u);
}

TEST(OffChipMemory, ModuleArithmetic)
{
    const auto vtm =
        OffChipMemoryModel::survey(OffChipKind::VortexTransition);
    EXPECT_EQ(vtm.modulesForCapacity(512), 1u);
    EXPECT_EQ(vtm.modulesForCapacity(513), 2u);
    EXPECT_EQ(vtm.modulesForBandwidth(25e9), 3u);
}

// --- config presets (Table I) --------------------------------------------------

TEST(NpuConfig, BaselineMatchesTableOne)
{
    const NpuConfig c = NpuConfig::baseline();
    EXPECT_EQ(c.peWidth, 256);
    EXPECT_EQ(c.peHeight, 256);
    EXPECT_EQ(c.ifmapBufferBytes, 8 * units::MiB);
    EXPECT_EQ(c.psumBufferBytes, 8 * units::MiB);
    EXPECT_EQ(c.ofmapBufferBytes, 8 * units::MiB);
    EXPECT_EQ(c.weightBufferBytes, 64 * units::kiB);
    EXPECT_EQ(c.regsPerPe, 1);
    EXPECT_FALSE(c.integratedOutputBuffer);
}

TEST(NpuConfig, SuperNpuMatchesTableOne)
{
    const NpuConfig c = NpuConfig::superNpu();
    EXPECT_EQ(c.peWidth, 64);
    EXPECT_EQ(c.peHeight, 256);
    EXPECT_EQ(c.ifmapBufferBytes, 24 * units::MiB);
    EXPECT_EQ(c.outputBufferBytes, 24 * units::MiB);
    EXPECT_EQ(c.weightBufferBytes, 128 * units::kiB);
    EXPECT_EQ(c.regsPerPe, 8);
    EXPECT_TRUE(c.integratedOutputBuffer);
    // Fig. 19's chunk counts: 64 x 384 KB ifmap, 256 x 96 KB output.
    EXPECT_EQ(c.ifmapDivision, 64);
    EXPECT_EQ(c.outputDivision, 256);
}

TEST(NpuConfigDeath, ChecksRejectNonsense)
{
    NpuConfig c = NpuConfig::baseline();
    c.peWidth = 0;
    EXPECT_DEATH(c.check(), "empty PE array");
    NpuConfig d = NpuConfig::baseline();
    d.ifmapBufferBytes = 0;
    EXPECT_DEATH(d.check(), "no ifmap buffer");
}

// --- architecture-level estimates ------------------------------------------------

/** All four Table I configurations clock at the same 52.6 GHz. */
class TableOneConfigs : public ::testing::TestWithParam<int>
{
  protected:
    static NpuConfig
    config(int index)
    {
        switch (index) {
          case 0: return NpuConfig::baseline();
          case 1: return NpuConfig::bufferOpt();
          case 2: return NpuConfig::resourceOpt();
          default: return NpuConfig::superNpu();
        }
    }
};

TEST_P(TableOneConfigs, FrequencyIsPeLimitedAtPaperValue)
{
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    NpuEstimator estimator(lib);
    const NpuEstimate est = estimator.estimate(config(GetParam()));
    EXPECT_NEAR(est.frequencyGhz, 52.6, 0.5);
    EXPECT_EQ(est.limitingUnit, "PE array");
}

TEST_P(TableOneConfigs, AreaAt28nmNearTableOne)
{
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    NpuEstimator estimator(lib);
    const NpuEstimate est = estimator.estimate(config(GetParam()));
    // Table I: ~283-299 mm^2 across all four configurations.
    EXPECT_GT(est.areaMm2At(28.0), 250.0);
    EXPECT_LT(est.areaMm2At(28.0), 340.0);
}

INSTANTIATE_TEST_SUITE_P(AllFour, TableOneConfigs,
                         ::testing::Range(0, 4));

TEST_F(EstimatorFixture, PeakPerformanceRatios)
{
    const NpuEstimate base = estimator.estimate(NpuConfig::baseline());
    const NpuEstimate super = estimator.estimate(NpuConfig::superNpu());
    // Table I: 3366 vs 842 TMAC/s -> exactly 4x (the width ratio).
    EXPECT_NEAR(base.peakMacPerSec / super.peakMacPerSec, 4.0, 1e-9);
    EXPECT_NEAR(base.peakMacPerSec, 3366e12, 150e12);
}

TEST_F(EstimatorFixture, SuperNpuRsfqStaticNearPaper)
{
    const NpuEstimate est = estimator.estimate(NpuConfig::superNpu());
    // Table III: 964 W RSFQ static.
    EXPECT_NEAR(est.staticPowerW, 964.0, 80.0);
}

TEST_F(EstimatorFixture, ErsfqHasZeroStatic)
{
    sfq::DeviceConfig edev;
    edev.technology = sfq::Technology::ERSFQ;
    sfq::CellLibrary elib(edev);
    NpuEstimator e(elib);
    EXPECT_DOUBLE_EQ(e.estimate(NpuConfig::superNpu()).staticPowerW, 0.0);
}

TEST_F(EstimatorFixture, UnitBreakdownSumsToTotals)
{
    const NpuEstimate est = estimator.estimate(NpuConfig::baseline());
    double static_sum = 0.0, area_sum = 0.0;
    std::uint64_t jj_sum = 0;
    for (const auto &unit : est.units) {
        static_sum += unit.staticPowerW;
        area_sum += unit.areaMm2;
        jj_sum += unit.jjCount;
    }
    EXPECT_NEAR(static_sum, est.staticPowerW, 1e-9);
    EXPECT_NEAR(area_sum, est.areaMm2, 1e-9);
    EXPECT_EQ(jj_sum, est.jjCount);
}

TEST_F(EstimatorFixture, BuffersDominateStaticPower)
{
    // The shift-register buffers hold billions of junctions; they
    // dominate the static budget (the Table III story).
    const NpuEstimate est = estimator.estimate(NpuConfig::superNpu());
    double buffer_static = 0.0;
    for (const auto &unit : est.units) {
        if (unit.name.find("buffer") != std::string::npos)
            buffer_static += unit.staticPowerW;
    }
    EXPECT_GT(buffer_static, 0.8 * est.staticPowerW);
}

TEST_F(EstimatorFixture, GeometrySnapshotsConsistent)
{
    const NpuEstimate est = estimator.estimate(NpuConfig::superNpu());
    EXPECT_EQ(est.ifmapChunkLength,
              est.ifmapRowLength / (std::uint64_t)64);
    EXPECT_EQ(est.outputChunkLength,
              est.outputRowLength / (std::uint64_t)256);
}

// --- Fig. 13 validation -----------------------------------------------------------

TEST_F(EstimatorFixture, ValidationCoversAllPrototypes)
{
    const auto entries = validationReport(lib);
    int mac = 0, srmem = 0, nw = 0, npu = 0;
    for (const auto &e : entries) {
        mac += e.unit == "MAC unit";
        srmem += e.unit == "SRmem";
        nw += e.unit == "NW unit";
        npu += e.unit == "NPU";
    }
    EXPECT_EQ(mac, 3);   // frequency, power, area
    EXPECT_EQ(srmem, 3);
    EXPECT_EQ(nw, 2);    // the NW unit has no frequency result
    EXPECT_EQ(npu, 3);
}

TEST_F(EstimatorFixture, ValidationErrorsMatchPaperBands)
{
    const auto entries = validationReport(lib);
    // Unit level: 5.6 % frequency, 1.2 % power, 1.3 % area.
    EXPECT_NEAR(meanAbsErrorPercent(entries, "frequency", false), 5.6,
                0.3);
    EXPECT_NEAR(meanAbsErrorPercent(entries, "power", false), 1.2, 0.2);
    EXPECT_NEAR(meanAbsErrorPercent(entries, "area", false), 1.3, 0.2);
    // Architecture level: 4.7 / 2.3 / 9.5 %.
    EXPECT_NEAR(meanAbsErrorPercent(entries, "frequency", true), 4.7,
                0.2);
    EXPECT_NEAR(meanAbsErrorPercent(entries, "power", true), 2.3, 0.2);
    EXPECT_NEAR(meanAbsErrorPercent(entries, "area", true), 9.5, 0.2);
}

TEST_F(EstimatorFixture, ValidationReferencesArePositive)
{
    for (const auto &e : validationReport(lib)) {
        EXPECT_GT(e.modelValue, 0.0) << e.unit << " " << e.metric;
        EXPECT_GT(e.referenceValue, 0.0) << e.unit << " " << e.metric;
    }
}

} // namespace
} // namespace estimator
} // namespace supernpu
