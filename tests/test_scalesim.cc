/**
 * @file
 * Tests for the TPU-class comparator model.
 */

#include <gtest/gtest.h>

#include "dnn/networks.hh"
#include "npusim/batch.hh"
#include "scalesim/tpu.hh"

namespace supernpu {
namespace scalesim {
namespace {

TEST(Tpu, PeakPerformanceMatchesTableOne)
{
    TpuConfig config;
    // 256 x 256 @ 0.7 GHz ~= 45 TMAC/s (Table I).
    EXPECT_NEAR(config.peakMacPerSec(), 45e12, 1e12);
}

TEST(Tpu, MacConservation)
{
    TpuSimulator tpu{TpuConfig{}};
    for (const auto &net : dnn::evaluationWorkloads()) {
        const auto result = tpu.run(net, 4);
        EXPECT_EQ(result.macOps, net.totalMacs() * 4ull) << net.name;
    }
}

TEST(Tpu, NeverExceedsPeak)
{
    TpuConfig config;
    TpuSimulator tpu(config);
    for (const auto &net : dnn::evaluationWorkloads()) {
        const int batch =
            npusim::maxBatchUnified(config.unifiedBufferBytes, net);
        const auto result = tpu.run(net, batch);
        EXPECT_LE(result.effectiveMacPerSec(),
                  config.peakMacPerSec() * 1.0001)
            << net.name;
    }
}

TEST(Tpu, FcLayersCrawlAtBatchOne)
{
    // A big FC layer at batch 1 does one MAC per PE per tile: the
    // per-tile fill/drain overhead (and the weight delivery it
    // covers) leaves the array almost entirely idle.
    dnn::Network net;
    net.name = "fc";
    net.layers = {dnn::fullyConnected("fc6", 25088, 4096)};
    TpuConfig config;
    TpuSimulator tpu(config);
    const auto result = tpu.run(net, 1);
    const double util =
        result.effectiveMacPerSec() / config.peakMacPerSec();
    EXPECT_LT(util, 0.05);
    // All of the layer's DRAM traffic is weights.
    EXPECT_EQ(result.dramBytes, net.totalWeightBytes());
}

TEST(Tpu, BatchAmortizesWeightTraffic)
{
    dnn::Network net;
    net.name = "fc";
    net.layers = {dnn::fullyConnected("fc6", 25088, 4096)};
    TpuSimulator tpu{TpuConfig{}};
    const double b1 = tpu.run(net, 1).effectiveMacPerSec();
    const double b16 = tpu.run(net, 16).effectiveMacPerSec();
    EXPECT_GT(b16, 8.0 * b1);
}

TEST(Tpu, ConvNetsReachReasonableUtilization)
{
    // VGG16's large convs keep a 256x256 array fairly busy.
    TpuConfig config;
    TpuSimulator tpu(config);
    const auto result = tpu.run(dnn::makeVgg16(), 3);
    const double util = result.effectiveMacPerSec() /
                        config.peakMacPerSec();
    EXPECT_GT(util, 0.1);
    EXPECT_LE(util, 1.0);
}

TEST(Tpu, DepthwisePainfullySlow)
{
    // The known TPU weakness the paper's MobileNet column exposes.
    TpuConfig config;
    TpuSimulator tpu(config);
    const auto mobilenet = tpu.run(dnn::makeMobileNet(), 20);
    const double util = mobilenet.effectiveMacPerSec() /
                        config.peakMacPerSec();
    EXPECT_LT(util, 0.05);
}

TEST(Tpu, OutputStationaryConservesMacs)
{
    TpuConfig config;
    config.dataflow = TpuDataflow::OutputStationary;
    TpuSimulator tpu(config);
    for (const auto &net : dnn::evaluationWorkloads()) {
        const auto result = tpu.run(net, 2);
        EXPECT_EQ(result.macOps, net.totalMacs() * 2ull) << net.name;
    }
}

TEST(Tpu, OutputStationaryRestreamsWeights)
{
    TpuConfig ws_config;
    TpuConfig os_config;
    os_config.dataflow = TpuDataflow::OutputStationary;
    TpuSimulator ws(ws_config), os(os_config);
    // A 1x1-conv layer has many output positions per weight: OS
    // re-fetches the weights once per position tile.
    const dnn::Layer layer = dnn::conv("pw", 256, 28, 256, 1, 1, 0);
    const auto ws_run = ws.simulateLayer(layer, 4);
    const auto os_run = os.simulateLayer(layer, 4);
    EXPECT_GT(os_run.dramBytes, 4 * ws_run.dramBytes);
}

TEST(Tpu, WeightStationaryWinsOnPointwiseHeavyNets)
{
    TpuConfig ws_config;
    TpuConfig os_config;
    os_config.dataflow = TpuDataflow::OutputStationary;
    TpuSimulator ws(ws_config), os(os_config);
    const dnn::Network net = dnn::makeResNet50();
    EXPECT_GT(ws.run(net, 20).effectiveMacPerSec(),
              1.5 * os.run(net, 20).effectiveMacPerSec());
}

TEST(Tpu, SpilledBatchPaysDramTraffic)
{
    TpuConfig config;
    TpuSimulator tpu(config);
    const dnn::Layer big = dnn::conv("c", 64, 224, 64, 3);
    const auto fits = tpu.simulateLayer(big, 1);
    const auto spills = tpu.simulateLayer(big, 30);
    // 30 batches of a 3.2 MB + 3.2 MB layer blow the 24 MB buffer.
    EXPECT_GT(spills.dramBytes, 30ull * big.ifmapBytes());
    EXPECT_EQ(fits.dramBytes, big.weightBytes());
}

} // namespace
} // namespace scalesim
} // namespace supernpu
