/**
 * @file
 * Tests for the sharding subsystem: ring-collective closed forms and
 * their saturation discipline, shard-network geometry, the degree-1
 * byte-identity guarantees (same cache entry, byte-identical
 * ledgers), hybrid-planner search determinism, conservation audits
 * (including that cooked books are caught), and the serving layer's
 * data-parallel replica groups.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>

#include "dnn/layer.hh"
#include "dnn/networks.hh"
#include "dnn/parser.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "npusim/explorer.hh"
#include "npusim/sim.hh"
#include "npusim/sim_cache.hh"
#include "obs/audit.hh"
#include "obs/ledger.hh"
#include "partition/link_model.hh"
#include "serving/simulator.hh"
#include "sharding/collective.hh"
#include "sharding/planner.hh"
#include "sharding/replica_group.hh"
#include "sharding/tensor_shard.hh"

namespace supernpu {
namespace sharding {
namespace {

constexpr std::uint64_t kMax =
    std::numeric_limits<std::uint64_t>::max();

/** The test link: round numbers so closed forms are easy to check. */
partition::LinkConfig
testLink()
{
    partition::LinkConfig link;
    link.bandwidthGBps = 100.0;
    link.latencyCycles = 10;
    return link;
}

// --- collective closed forms -----------------------------------------

TEST(Collective, RingAllReduceMatchesTheClosedForm)
{
    const partition::LinkConfig link = testLink();
    // bytes divisible by K so the ceil is exact: chunk = bytes/K,
    // steps = 2(K-1), wire = steps * chunk, cycles = steps * latency
    // + ceil(wire * freq / bw).
    for (int k : {2, 4, 8}) {
        const std::uint64_t bytes = 8000;
        const CollectiveCost cost =
            allReduceCost(link, k, bytes, 50.0);
        const std::uint64_t steps = 2u * ((std::uint64_t)k - 1);
        const std::uint64_t wire = steps * (bytes / (std::uint64_t)k);
        EXPECT_EQ(cost.steps, steps) << "K=" << k;
        EXPECT_EQ(cost.wireBytes, wire) << "K=" << k;
        // 100 GB/s at 50 GHz: 2 bytes per cycle, and wire is even.
        EXPECT_EQ(cost.cycles, steps * 10u + wire / 2u) << "K=" << k;
    }
}

TEST(Collective, RingAllGatherAndScatterMoveHalfTheAllReduce)
{
    const partition::LinkConfig link = testLink();
    for (int k : {2, 4, 8}) {
        const std::uint64_t bytes = 8000;
        const CollectiveCost gather =
            allGatherCost(link, k, bytes, 50.0);
        const CollectiveCost scatter =
            scatterCost(link, k, bytes, 50.0);
        const CollectiveCost reduce =
            allReduceCost(link, k, bytes, 50.0);
        EXPECT_EQ(gather.steps, (std::uint64_t)k - 1);
        EXPECT_EQ(gather.wireBytes, reduce.wireBytes / 2u);
        EXPECT_EQ(gather.cycles, reduce.cycles / 2u);
        // Scatter is the all-gather volume in reverse.
        EXPECT_EQ(scatter.steps, gather.steps);
        EXPECT_EQ(scatter.wireBytes, gather.wireBytes);
        EXPECT_EQ(scatter.cycles, gather.cycles);
    }
}

TEST(Collective, SingleChipCollectivesAreFree)
{
    const partition::LinkConfig link = testLink();
    for (const CollectiveCost &cost :
         {allReduceCost(link, 1, 1 << 20, 50.0),
          allGatherCost(link, 1, 1 << 20, 50.0),
          scatterCost(link, 1, 1 << 20, 50.0),
          allReduceCost(link, 4, 0, 50.0)}) {
        EXPECT_EQ(cost.steps, 0u);
        EXPECT_EQ(cost.wireBytes, 0u);
        EXPECT_EQ(cost.cycles, 0u);
    }
}

TEST(Collective, ParserUnboundedTensorsSaturateInsteadOfWrapping)
{
    const partition::LinkConfig link = testLink();
    // A UINT64_MAX-sized tensor: 2(K-1) chunks of ~kMax/K bytes
    // overflow the wire-volume product, which must pin to kMax. At
    // 200 GHz the wire alone costs 2 cycles per byte, so the cycle
    // count overflows too and must pin rather than wrap.
    const CollectiveCost cost = allReduceCost(link, 4, kMax, 200.0);
    EXPECT_EQ(cost.wireBytes, kMax);
    EXPECT_EQ(cost.cycles, kMax);
}

TEST(Collective, SaturationWarnsOncePerBoundary)
{
    const partition::LinkConfig link = testLink();
    // Trip the same saturating boundary twice: the dedup in
    // partition::guardedBytes may add at most one new warning for
    // it (zero if an earlier test already tripped it).
    const std::size_t before = partition::saturationWarningCount();
    (void)allGatherCost(link, 8, kMax, 50.0);
    const std::size_t after_first = partition::saturationWarningCount();
    (void)allGatherCost(link, 8, kMax, 50.0);
    EXPECT_LE(after_first - before, 1u);
    EXPECT_EQ(partition::saturationWarningCount(), after_first);
}

TEST(Collective, ActivationSaturationDedupsByLayerAndBatch)
{
    // A distinct layer name makes the boundary context fresh, so the
    // first call must warn exactly once and the repeat must not.
    const dnn::Layer layer =
        dnn::conv("shard-dedup-probe", 1, 100000, 2000000000, 1, 1, 0);
    const std::size_t before = partition::saturationWarningCount();
    EXPECT_EQ(partition::activationBytes(layer, 7), kMax);
    EXPECT_EQ(partition::saturationWarningCount(), before + 1);
    EXPECT_EQ(partition::activationBytes(layer, 7), kMax);
    EXPECT_EQ(partition::saturationWarningCount(), before + 1);
}

TEST(Sharding, SaturatingAddClampsAtTheCeiling)
{
    EXPECT_EQ(saturatingAdd(2, 3), 5u);
    EXPECT_EQ(saturatingAdd(kMax, 1), kMax);
    EXPECT_EQ(saturatingAdd(kMax - 1, 5), kMax);
}

// --- shard geometry --------------------------------------------------

TEST(ShardNetwork, SplitsOfmapChannelsByTheCeilShare)
{
    dnn::Network net;
    net.name = "GeomTest";
    net.layers = {dnn::conv("c1", 3, 32, 30, 3, 1, 1),
                  dnn::conv("c2", 30, 32, 7, 3, 1, 1)};
    net.check();

    const dnn::Network four = shardNetwork(net, 4);
    EXPECT_EQ(four.name, "GeomTest/tp4");
    ASSERT_EQ(four.layers.size(), 2u);
    // 30 channels over 4 shards: the widest holds ceil(30/4) = 8.
    EXPECT_EQ(four.layers[0].outChannels, 8);
    // Input channels stay full: every shard reads the whole ifmap.
    EXPECT_EQ(four.layers[0].inChannels, 3);
    // 7 over 4: widest share 2 — narrow layers leave chips idle but
    // still shrink.
    EXPECT_EQ(four.layers[1].outChannels, 2);
}

TEST(ShardNetwork, DepthwiseShardsBothChannelDims)
{
    dnn::Network net;
    net.name = "DwTest";
    net.layers = {dnn::conv("c1", 3, 32, 32, 3, 1, 1),
                  dnn::depthwise("dw", 32, 32, 1)};
    net.check();

    const dnn::Network two = shardNetwork(net, 2);
    // The mapper requires in == out for depthwise layers, so the
    // shard shrinks both sides together.
    EXPECT_EQ(two.layers[1].outChannels, 16);
    EXPECT_EQ(two.layers[1].inChannels, 16);
}

TEST(ShardNetwork, DegreeOneReturnsTheOriginalObject)
{
    const dnn::Network net = dnn::makeMobileNet();
    const dnn::Network same = shardNetwork(net, 1);
    // Same name, same geometry — the cache key cannot change.
    EXPECT_EQ(same.name, net.name);
    ASSERT_EQ(same.layers.size(), net.layers.size());
    for (std::size_t l = 0; l < net.layers.size(); ++l) {
        EXPECT_EQ(same.layers[l].outChannels,
                  net.layers[l].outChannels);
        EXPECT_EQ(same.layers[l].inChannels, net.layers[l].inChannels);
    }
}

// --- fixture ---------------------------------------------------------

/** Shared design point + a cheap four-conv network. */
class ShardingFixture : public ::testing::Test
{
  protected:
    ShardingFixture()
        : net(dnn::parseNetwork("network ShardTest\n"
                                "conv c1  3 32 16 3 1 1\n"
                                "conv c2 16 32 32 3 1 1\n"
                                "conv c3 32 16 32 3 1 1\n"
                                "conv c4 32 16 16 3 1 1\n")),
          config(estimator::NpuConfig::superNpu()),
          estimate(estimator::NpuEstimator(lib).estimate(config)),
          batch(npusim::maxBatch(config, estimate, net))
    {
    }

    sfq::DeviceConfig dev;
    sfq::CellLibrary lib{dev};
    dnn::Network net;
    estimator::NpuConfig config;
    estimator::NpuEstimate estimate;
    int batch;
    npusim::SimCache cache;
};

// --- degree-1 identity -----------------------------------------------

TEST_F(ShardingFixture, SingleShardSharesTheSingleChipCacheEntry)
{
    TensorSharder sharder(estimate, testLink(), &cache);
    const TensorShardResult one = sharder.shard(net, 1, batch);
    EXPECT_EQ(one.collectiveCycles, 0u);
    EXPECT_EQ(one.collectiveBytes, 0u);
    EXPECT_EQ(one.totalCycles, one.soloCycles);

    // The strong form: T=1 simulated the ORIGINAL network, so the
    // cache hands back the very same SimResult object the direct
    // single-chip path gets — byte-identical ledgers follow.
    npusim::NpuSimulator sim(estimate);
    const auto direct = cache.getOrRun(sim, net, batch);
    EXPECT_EQ(one.wideSim.get(), direct.get());

    obs::RunLedger sharded, reference;
    obs::addSimResult(sharded, *one.wideSim);
    obs::addSimResult(reference, *direct);
    EXPECT_EQ(sharded.json(), reference.json());
}

TEST_F(ShardingFixture, SingleReplicaSharesTheSingleChipCacheEntry)
{
    ReplicaGroup group(estimate, testLink(), &cache);
    const ReplicaGroupResult one = group.run(net, 1, batch);
    EXPECT_EQ(one.gatherCycles, 0u);
    EXPECT_EQ(one.gatherBytes, 0u);
    EXPECT_EQ(one.totalCycles, one.soloCycles);
    EXPECT_EQ(one.wideShare, batch);

    npusim::NpuSimulator sim(estimate);
    const auto direct = cache.getOrRun(sim, net, batch);
    EXPECT_EQ(one.wideSim.get(), direct.get());
}

TEST_F(ShardingFixture, DegreeOnePlanReproducesTheSingleChipRun)
{
    HybridPlanner planner(estimate, testLink(), &cache);
    const ShardPlan plan = planner.evaluate(net, 1, 1, 1, batch);
    EXPECT_EQ(plan.chips(), 1);
    EXPECT_EQ(plan.tensorCollectiveCycles, 0u);
    EXPECT_EQ(plan.gatherCycles, 0u);
    EXPECT_EQ(plan.intervalCycles, plan.soloCycles);
    EXPECT_EQ(plan.latencyCycles, plan.soloCycles);

    npusim::NpuSimulator sim(estimate);
    const auto direct = cache.getOrRun(sim, net, batch);
    EXPECT_EQ(plan.soloCycles, direct->totalCycles);
    ASSERT_EQ(plan.pipeline.stageCount(), 1);
    EXPECT_EQ(plan.pipeline.stages[0].sim.get(), direct.get());
}

// --- sharded runs and audits -----------------------------------------

TEST_F(ShardingFixture, TensorShardResultPassesTheAudit)
{
    TensorSharder sharder(estimate, testLink(), &cache);
    for (int t : {1, 2, 4}) {
        const TensorShardResult result = sharder.shard(net, t, batch);
        const obs::AuditReport audit = obs::auditSharding(result);
        EXPECT_TRUE(audit.ok()) << "T=" << t << "\n" << audit.summary();
        EXPECT_LE(result.speedup(), (double)t + 1e-9);
        if (t > 1) {
            EXPECT_GT(result.collectiveCycles, 0u);
            // Every layer all-reduces its full ofmap.
            for (const auto &layer : result.layers)
                EXPECT_GT(layer.reduceBytes, 0u);
        }
    }
}

TEST_F(ShardingFixture, ReplicaGroupResultPassesTheAudit)
{
    ReplicaGroup group(estimate, testLink(), &cache);
    for (int r : {1, 2, 4}) {
        const ReplicaGroupResult result = group.run(net, r, batch);
        const obs::AuditReport audit = obs::auditSharding(result);
        EXPECT_TRUE(audit.ok()) << "R=" << r << "\n" << audit.summary();
        EXPECT_LE(result.speedup(), (double)r + 1e-9);
        EXPECT_EQ(result.wideShare, (batch + r - 1) / r);
    }
}

TEST_F(ShardingFixture, ReplicasClampToTheBatch)
{
    ReplicaGroup group(estimate, testLink(), &cache);
    const ReplicaGroupResult tiny = group.run(net, 64, 3);
    EXPECT_EQ(tiny.replicas, 3);
    EXPECT_EQ(tiny.wideShare, 1);
}

TEST_F(ShardingFixture, AuditCatchesCookedShardBooks)
{
    TensorSharder sharder(estimate, testLink(), &cache);
    TensorShardResult cooked = sharder.shard(net, 2, batch);
    cooked.totalCycles -= 1; // books no longer balance
    EXPECT_FALSE(obs::auditSharding(cooked).ok());

    ReplicaGroup group(estimate, testLink(), &cache);
    ReplicaGroupResult inflated = group.run(net, 2, batch);
    inflated.soloCycles *= 3; // claims a speedup beyond R
    EXPECT_FALSE(obs::auditSharding(inflated).ok());
}

TEST_F(ShardingFixture, AuditCatchesACookedPlan)
{
    HybridPlanner planner(estimate, testLink(), &cache);
    ShardPlan plan = planner.evaluate(net, 2, 1, 2, batch);
    ASSERT_TRUE(obs::auditSharding(plan).ok());
    plan.intervalCycles /= 2; // faster than the bottleneck allows
    EXPECT_FALSE(obs::auditSharding(plan).ok());
}

// --- superlinear tensor sharding (fuzz-discovered) -------------------

/**
 * The minimal case `supernpu check --seed 9` shrank to: a 36-feature
 * FC layer on a 32-wide array needs two weight mappings solo but
 * only one per T=2 shard, so each shard streams the ifmap once where
 * the solo run streamed it twice — the group legitimately beats 2x.
 */
class SuperlinearFixture : public ::testing::Test
{
  protected:
    SuperlinearFixture()
        : config(npusim::DesignSpaceExplorer::makeConfig(
              32, 16, 1, 50)),
          estimate(estimator::NpuEstimator(lib).estimate(config))
    {
        net.name = "Superlinear";
        net.layers.push_back(
            dnn::fullyConnected("f1", 3 * 8 * 8, 36));
        net.check();
    }

    sfq::DeviceConfig dev;
    sfq::CellLibrary lib{dev};
    estimator::NpuConfig config;
    estimator::NpuEstimate estimate;
    dnn::Network net;
    npusim::SimCache cache;
};

TEST_F(SuperlinearFixture, MappingQuantizationBeatsLinearSpeedup)
{
    TensorSharder sharder(estimate, testLink(), &cache);
    const TensorShardResult two = sharder.shard(net, 2, 1);
    EXPECT_GT(two.speedup(), 2.0);
    EXPECT_GT(two.peakMacPerSec, 0.0);
    const obs::AuditReport tensor_audit = obs::auditSharding(two);
    EXPECT_TRUE(tensor_audit.ok()) << tensor_audit.summary();

    HybridPlanner planner(estimate, testLink(), &cache);
    const ShardPlan plan = planner.evaluate(net, 1, 2, 1, 1);
    EXPECT_GT(plan.speedup(), 2.0);
    const obs::AuditReport plan_audit = obs::auditSharding(plan);
    EXPECT_TRUE(plan_audit.ok()) << plan_audit.summary();
}

TEST_F(SuperlinearFixture, MacThroughputCeilingStillCatchesCookedBooks)
{
    // The speedup bound is gone; the replacement conservation law —
    // a group can't beat chips() x per-chip peak MAC rate — must
    // still have teeth against inflated MAC books.
    TensorSharder sharder(estimate, testLink(), &cache);
    TensorShardResult two = sharder.shard(net, 2, 1);
    two.macOpsPerBatch *= 1000000;
    EXPECT_FALSE(obs::auditSharding(two).ok());

    HybridPlanner planner(estimate, testLink(), &cache);
    ShardPlan plan = planner.evaluate(net, 1, 2, 1, 1);
    plan.macOpsPerBatch *= 1000000;
    EXPECT_FALSE(obs::auditSharding(plan).ok());
}

// --- planner ---------------------------------------------------------

TEST_F(ShardingFixture, PlanBaselineIsTheFullBatchSoloRun)
{
    ASSERT_GE(batch, 2);
    HybridPlanner planner(estimate, testLink(), &cache);
    const ShardPlan plan = planner.evaluate(net, 2, 1, 1, batch);

    // The baseline is the FULL batch on one chip, not the replica
    // share: a pure-DP plan's speedup and group MAC/s are measured
    // against it (regression: both were taken at ceil(batch/R), so
    // DP plans reported ~1x and ~1/R of their true MAC/s).
    npusim::NpuSimulator sim(estimate);
    const auto direct = cache.getOrRun(sim, net, batch);
    EXPECT_EQ(plan.soloCycles, direct->totalCycles);
    EXPECT_EQ(plan.macOpsPerBatch, direct->macOps);
    EXPECT_GT(plan.speedup(), 1.0);

    // And it matches ReplicaGroup's books for the same placement.
    ReplicaGroup group(estimate, testLink(), &cache);
    const ReplicaGroupResult dp = group.run(net, 2, batch);
    EXPECT_EQ(plan.soloCycles, dp.soloCycles);
    EXPECT_EQ(plan.macOpsPerBatch, dp.macOpsPerBatch);

    const obs::AuditReport audit = obs::auditSharding(plan);
    EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST_F(ShardingFixture, PlannerEnumeratesTheWholeBudget)
{
    HybridPlanner planner(estimate, testLink(), &cache);
    const PlanSearch search =
        planner.plan(net, 4, batch, PlanObjective::Throughput);
    EXPECT_EQ(search.chipBudget, 4);
    EXPECT_FALSE(search.evaluated.empty());
    for (const ShardPlan &plan : search.evaluated) {
        EXPECT_LE(plan.chips(), 4);
        const obs::AuditReport audit = obs::auditSharding(plan);
        EXPECT_TRUE(audit.ok()) << audit.summary();
    }
    // The single-chip factorization is always in the space, so the
    // winner can never be worse than it.
    const ShardPlan solo = planner.evaluate(net, 1, 1, 1, batch);
    EXPECT_GE(search.best().throughput(), solo.throughput());

    const PlanSearch latency =
        planner.plan(net, 4, batch, PlanObjective::Latency);
    EXPECT_LE(latency.best().latencySec(), solo.latencySec());
}

TEST_F(ShardingFixture, PlansAreDeterministicAcrossFreshCaches)
{
    const auto fingerprint = [&]() {
        npusim::SimCache fresh;
        HybridPlanner planner(estimate, testLink(), &fresh);
        obs::RunLedger ledger;
        obs::addShardPlan(
            ledger,
            planner.plan(net, 4, batch, PlanObjective::Throughput)
                .best());
        return ledger.json();
    };
    EXPECT_EQ(fingerprint(), fingerprint());
}

TEST_F(ShardingFixture, ParallelPlanIsByteIdenticalToSerial)
{
    // One cold-cache sweep at a given job count: every evaluated
    // plan's books, the winner, and both caches' tallies.
    struct Sweep
    {
        std::string bytes;
        npusim::SimCacheStats sim;
        partition::LayerTimingCacheStats timings;
    };
    const auto sweep = [&](int jobs) {
        npusim::SimCache fresh;
        HybridPlanner planner(estimate, testLink(), &fresh);
        const PlanSearch search = planner.plan(
            net, 4, batch, PlanObjective::Throughput, jobs);
        std::ostringstream out;
        out.precision(17);
        out << search.bestIndex << '\n';
        for (const ShardPlan &plan : search.evaluated) {
            out << plan.dataParallel << ' ' << plan.tensorShards
                << ' ' << plan.pipelineStages << ' '
                << plan.intervalCycles << ' ' << plan.latencyCycles
                << ' ' << plan.tensorCollectiveCycles << ' '
                << plan.gatherCycles << ' ' << plan.throughput()
                << '\n';
        }
        obs::RunLedger ledger;
        obs::addShardPlan(ledger, search.best());
        out << ledger.json();
        return Sweep{out.str(), fresh.stats(),
                     planner.timingCacheStats()};
    };

    const Sweep serial = sweep(1);
    EXPECT_FALSE(serial.bytes.empty());
    for (int jobs : {2, 8}) {
        const Sweep parallel = sweep(jobs);
        EXPECT_EQ(parallel.bytes, serial.bytes) << "jobs " << jobs;
        // Single-flight accounting: the fan-out must not change what
        // either cache counts, or the byte-compared shard ledgers
        // (which embed these tallies) would differ across --jobs.
        EXPECT_EQ(parallel.sim.hits, serial.sim.hits);
        EXPECT_EQ(parallel.sim.misses, serial.sim.misses);
        EXPECT_EQ(parallel.timings.hits, serial.timings.hits);
        EXPECT_EQ(parallel.timings.misses, serial.timings.misses);
    }
}

// --- serving replica groups ------------------------------------------

TEST_F(ShardingFixture, ServingReplicaGroupsShareTheLoad)
{
    serving::BatchServiceModel service(estimate, net);
    serving::ServingConfig serving;
    serving.arrival.ratePerSec = 0.5 * service.peakRps(batch);
    serving.batching.maxBatch = batch;
    serving.batching.timeoutSec = 1e-4;
    serving.requests = 2000;
    serving.chips = 4;
    serving.dataParallelReplicas = 2;
    const auto report =
        serving::ServingSimulator(service, serving).run();

    EXPECT_EQ(report.completed, serving.requests);
    EXPECT_EQ(report.dataParallelReplicas, 2);
    EXPECT_EQ(report.replicaGroups, 2);
    // Launches are attributed to each group's first chip; busy time
    // lands on every replica.
    ASSERT_EQ(report.perChipBatches.size(), 4u);
    EXPECT_GT(report.perChipBatches[0], 0u);
    EXPECT_EQ(report.perChipBatches[1], 0u);
    EXPECT_EQ(report.perChipBatches[0] + report.perChipBatches[2],
              report.batchesLaunched);
    for (double busy : report.perChipBusySec)
        EXPECT_GT(busy, 0.0);
    // Both replicas of a group ride the same batches, so their busy
    // clocks match exactly.
    EXPECT_DOUBLE_EQ(report.perChipBusySec[0],
                     report.perChipBusySec[1]);

    const obs::AuditReport audit = obs::auditServing(report);
    EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST_F(ShardingFixture, ServingFaultQuarantinesTheWholeReplicaGroup)
{
    serving::BatchServiceModel service(estimate, net);
    serving::ServingConfig serving;
    serving.arrival.ratePerSec = 0.5 * service.peakRps(batch);
    serving.batching.maxBatch = batch;
    serving.batching.timeoutSec = 1e-4;
    serving.requests = 2000;
    serving.chips = 4;
    serving.dataParallelReplicas = 2;
    // One permanent flux trap on chip 1 — the *second* replica of
    // group 0. A replica group is one logical server, so quarantine
    // must write off both chips.
    reliability::FaultScheduleConfig faults;
    faults.chips = 4;
    reliability::FaultEvent event;
    event.kind = reliability::FaultKind::FluxTrap;
    event.chip = 1;
    event.magnitude = faults.fluxTrapDerate;
    serving.faults =
        reliability::FaultSchedule::fromEvents(faults, {event});
    serving.resilience.recovery =
        serving::RecoveryPolicy::DegradedDispatch;
    serving.resilience.detectLatencySec = 1e-12;
    const auto report =
        serving::ServingSimulator(service, serving).run();

    EXPECT_EQ(report.completed, serving.requests);
    ASSERT_EQ(report.perChipBatches.size(), 4u);
    EXPECT_EQ(report.perChipBatches[0], 0u);
    EXPECT_EQ(report.perChipBatches[1], 0u);
    EXPECT_GT(report.perChipBatches[2], 0u);
    // Writing off one of two groups costs half the fleet.
    EXPECT_LT(report.availability, 0.55);
    const obs::AuditReport audit = obs::auditServing(report);
    EXPECT_TRUE(audit.ok()) << audit.summary();
}

TEST_F(ShardingFixture, ServingRejectsReplicasWithPipelineStages)
{
    serving::ServingConfig serving;
    serving.chips = 4;
    serving.pipelineStages = 2;
    serving.dataParallelReplicas = 2;
    EXPECT_DEATH(serving.check(), "replica");
}

TEST_F(ShardingFixture, ServingRejectsReplicasWithCheckpointRestart)
{
    serving::ServingConfig serving;
    serving.chips = 2;
    serving.dataParallelReplicas = 2;
    serving.resilience.checkpointRestart = true;
    EXPECT_DEATH(serving.check(), "checkpoint");
}

} // namespace
} // namespace sharding
} // namespace supernpu
