/**
 * @file
 * Regenerates Fig. 20: performance impact and area overhead of the
 * on-chip buffer optimizations — psum/ofmap integration, then
 * division into 2..4096 chunks. The paper: single-batch performance
 * saturates at ~6.26x from division degree 64; max-batch performance
 * reaches ~20x; the mux/demux area overhead stays flat until ~256
 * chunks and then grows rapidly.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/units.hh"

using namespace supernpu;
using estimator::NpuConfig;

namespace {

NpuConfig
dividedConfig(int division)
{
    NpuConfig config = NpuConfig::baseline();
    config.name = "int+div" + std::to_string(division);
    config.integratedOutputBuffer = true;
    // Integration merges the three 8 MB buffers into matched 12 MB
    // input/output pairs (Section V-B1).
    config.ifmapBufferBytes = 12 * units::MiB;
    config.outputBufferBytes = 12 * units::MiB;
    config.psumBufferBytes = 0;
    config.ofmapBufferBytes = 0;
    config.ifmapDivision = division;
    config.outputDivision = division;
    return config;
}

} // namespace

int
main()
{
    bench::Pipeline pipe;

    const NpuConfig baseline = NpuConfig::baseline();
    const auto base_est = pipe.estimator.estimate(baseline);
    const double base_single = pipe.npuAveragePerf(baseline, 1);
    const double base_area = base_est.areaMm2;

    TextTable table(
        "Fig. 20: buffer integration + division (vs Baseline)");
    table.row()
        .cell("configuration")
        .cell("single-batch perf")
        .cell("max-batch perf")
        .cell("area");
    table.row().cell("Baseline").cell(1.0, 2).cell(1.0, 2).cell(1.0, 2);

    for (int division : {2, 4, 16, 64, 256, 1024, 4096}) {
        const NpuConfig config = dividedConfig(division);
        const auto est = pipe.estimator.estimate(config);
        const std::string label = division == 2
                                      ? "+Integration (div 2)"
                                      : "+Division " +
                                            std::to_string(division);
        table.row()
            .cell(label)
            .cell(pipe.npuAveragePerf(config, 1) / base_single, 2)
            .cell(pipe.npuAveragePerf(config) / base_single, 2)
            .cell(est.areaMm2 / base_area, 2);
    }
    table.print();
    std::printf("\npaper reference: ~6.26x single batch and ~20x max"
                " batch from division 64; area flat until ~256 chunks,"
                " then rapidly growing.\n");
    return 0;
}
