/**
 * @file
 * Ablation: the on-chip network choice at the system level.
 *
 * Fig. 5 compares the network candidates in isolation; this bench
 * shows what adopting each one would do to the whole NPU, whose
 * clock is the minimum over every unit: the 2D splitter tree's
 * width-proportional input skew drags the entire chip down to a few
 * GHz at realistic array widths.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"
#include "estimator/network_model.hh"

using namespace supernpu;
using estimator::NetworkDesign;
using estimator::NetworkUnitModel;

int
main()
{
    bench::Pipeline pipe;
    const auto config = estimator::NpuConfig::superNpu();
    const auto base_estimate = pipe.estimator.estimate(config);

    TextTable table("ablation: on-chip network design (SuperNPU, w=64)");
    table.row()
        .cell("network")
        .cell("network limit (GHz)")
        .cell("NPU clock (GHz)")
        .cell("avg effective TMAC/s")
        .cell("relative");

    double reference_perf = 0.0;
    for (NetworkDesign design :
         {NetworkDesign::Systolic2D, NetworkDesign::SplitterTree1D,
          NetworkDesign::SplitterTree2D}) {
        NetworkUnitModel network(pipe.library, design, config.peWidth,
                                 config.bitWidth);
        auto estimate = base_estimate;
        estimate.frequencyGhz = std::min(base_estimate.frequencyGhz,
                                         network.frequencyGhz());
        estimate.peakMacPerSec =
            (double)config.peCount() * estimate.frequencyGhz * 1e9;

        npusim::NpuSimulator sim(estimate);
        double perf = 0.0;
        for (const auto &net : pipe.workloads) {
            const int batch = npusim::maxBatch(config, estimate, net);
            perf += sim.run(net, batch).effectiveMacPerSec() /
                    (double)pipe.workloads.size();
        }
        if (design == NetworkDesign::Systolic2D)
            reference_perf = perf;

        table.row()
            .cell(networkDesignName(design))
            .cell(network.frequencyGhz(), 1)
            .cell(estimate.frequencyGhz, 1)
            .cell(perf / 1e12, 1)
            .cell(perf / reference_perf, 3);
    }
    table.print();
    std::printf("\ntakeaway: the store-and-forward systolic chain is"
                " the only candidate that does not throttle the 52.6"
                " GHz PE array (Section III-A's conclusion).\n");
    return 0;
}
