/**
 * @file
 * Regenerates Table III: power and performance-per-watt of the
 * RSFQ and ERSFQ SuperNPU variants against the 40 W TPU, without
 * and with the 400x cryogenic cooling overhead. Paper: RSFQ 964 W
 * (0.95x / 0.002x), ERSFQ 1.9 W (490x / 1.23x).
 */

#include <cstdio>

#include "bench_common.hh"
#include "power/power.hh"

using namespace supernpu;

namespace {

struct Variant
{
    const char *name;
    sfq::Technology technology;
};

} // namespace

int
main()
{
    const auto super = estimator::NpuConfig::superNpu();

    bench::Pipeline rsfq_pipe(sfq::Technology::RSFQ);

    TextTable table("Table III: power-efficiency evaluation");
    table.row()
        .cell("design")
        .cell("chip power (W)")
        .cell("perf/W vs TPU (free cooling)")
        .cell("power w/ cooling (W)")
        .cell("perf/W vs TPU (w/ cooling)");
    table.row()
        .cell("TPU")
        .cell(rsfq_pipe.tpuConfig.averagePowerW, 1)
        .cell(1.0, 3)
        .cell(rsfq_pipe.tpuConfig.averagePowerW, 1)
        .cell(1.0, 3);

    for (const Variant variant :
         {Variant{"RSFQ-SuperNPU", sfq::Technology::RSFQ},
          Variant{"ERSFQ-SuperNPU", sfq::Technology::ERSFQ}}) {
        bench::Pipeline pipe(variant.technology);
        const auto est = pipe.estimator.estimate(super);
        npusim::NpuSimulator sim(est);

        // The paper's method: the Fig. 23 mean speed-up times the
        // average-power ratio (its 490x = 23x * 40 W / 1.9 W).
        power::PowerReport report;
        double mean_speedup = 0.0;
        for (const auto &net : pipe.workloads) {
            const int batch = npusim::maxBatch(super, est, net);
            const auto run = sim.run(net, batch);
            const auto p = power::analyze(est, run);
            report.staticW = p.staticW;
            report.dynamicW +=
                p.dynamicW / (double)pipe.workloads.size();

            const int tpu_batch = npusim::maxBatchUnified(
                pipe.tpuConfig.unifiedBufferBytes, net);
            mean_speedup +=
                run.effectiveMacPerSec() /
                pipe.tpu.run(net, tpu_batch).effectiveMacPerSec() /
                (double)pipe.workloads.size();
        }

        const double power_ratio_free =
            pipe.tpuConfig.averagePowerW / report.chipW();
        const double power_ratio_cooled =
            pipe.tpuConfig.averagePowerW / report.totalWithCoolingW();
        table.row()
            .cell(variant.name)
            .cell(report.chipW(), 1)
            .cell(mean_speedup * power_ratio_free, 3)
            .cell(report.totalWithCoolingW(), 1)
            .cell(mean_speedup * power_ratio_cooled, 3);
    }
    table.print();
    std::printf("\npaper reference: RSFQ 964 W -> 0.95x free / 0.002x"
                " cooled; ERSFQ 1.9 W -> 490x free / 1.23x cooled"
                " (400x cooling overhead, Holmes et al.).\n");
    return 0;
}
