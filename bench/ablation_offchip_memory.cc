/**
 * @file
 * Ablation: the Section II-B4 off-chip memory survey, quantified.
 *
 * For each 4 K-capable memory technology and the CMOS DRAM the paper
 * adopts: the demonstrated capacity, how many modules a single
 * ResNet-50 weight set (25 MB) would need, and the SuperNPU's
 * throughput if that technology's bandwidth fed the chip. The JJ
 * memories are fast and cryogenic but orders of magnitude too small;
 * CMOS DRAM is the only practical option — which is exactly why the
 * architecture works so hard to stay on-chip.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/units.hh"
#include "estimator/offchip_memory.hh"

using namespace supernpu;
using estimator::NpuConfig;
using estimator::OffChipMemoryModel;

int
main()
{
    bench::Pipeline pipe;
    const dnn::Network resnet = dnn::makeResNet50();
    const std::uint64_t weight_set = resnet.totalWeightBytes();

    TextTable table("ablation: off-chip memory technology survey");
    table.row()
        .cell("technology")
        .cell("demonstrated")
        .cell("modules for ResNet50 weights")
        .cell("BW/module (GB/s)")
        .cell("SuperNPU avg TMAC/s")
        .cell("practical");

    for (const auto &memory : OffChipMemoryModel::surveyAll()) {
        NpuConfig config = NpuConfig::superNpu();
        config.memoryBandwidth = memory.bandwidth;
        const auto est = pipe.estimator.estimate(config);
        npusim::NpuSimulator sim(est);
        double perf = 0.0;
        for (const auto &net : pipe.workloads) {
            const int batch = npusim::maxBatch(config, est, net);
            perf += sim.run(net, batch).effectiveMacPerSec() / 1e12 /
                    (double)pipe.workloads.size();
        }
        table.row()
            .cell(offChipKindName(memory.kind))
            .cell(units::bytesHuman(memory.demonstratedCapacity))
            .cell((unsigned long long)memory.modulesForCapacity(
                weight_set))
            .cell(memory.bandwidth / 1e9, 0)
            .cell(perf, 1)
            .cell(memory.practical ? "yes" : "no");
    }
    table.print();

    std::printf("\nnotes:\n");
    for (const auto &memory : OffChipMemoryModel::surveyAll()) {
        std::printf("  %-26s %s\n", offChipKindName(memory.kind),
                    memory.note.c_str());
    }
    std::printf("\ntakeaway: a ResNet-50 weight set alone would need"
                " ~%llu VTM modules; until a scalable cryogenic memory"
                " exists, CMOS DRAM + aggressive on-chip reuse (the"
                " paper's Section II-B4 conclusion) is the only"
                " workable design point.\n",
                (unsigned long long)OffChipMemoryModel::survey(
                    estimator::OffChipKind::VortexTransition)
                    .modulesForCapacity(weight_set));
    return 0;
}
