/**
 * @file
 * Google-benchmark microbenchmarks of the simulation kernels
 * themselves: how fast the analog transient engine, the functional
 * systolic array, the estimator, and the cycle-level performance
 * simulator run on the host. Useful when sizing sweeps.
 */

#include <benchmark/benchmark.h>

#include "dnn/networks.hh"
#include "estimator/npu_estimator.hh"
#include "functional/npu.hh"
#include "jsim/cells.hh"
#include "npusim/sim.hh"
#include "scalesim/tpu.hh"

using namespace supernpu;

namespace {

void
BM_JsimJtlTransient(benchmark::State &state)
{
    const std::size_t stages = (std::size_t)state.range(0);
    jsim::DeviceParams params;
    jsim::Circuit circuit;
    const jsim::JtlChain chain =
        jsim::appendJtl(circuit, params, stages, "J");
    jsim::attachPulseInput(circuit, params, chain.input, {50e-12});
    jsim::TransientConfig config;
    config.duration = 200e-12;
    for (auto _ : state) {
        jsim::TransientSimulator sim(circuit, config);
        benchmark::DoNotOptimize(sim.run().steps);
    }
}
BENCHMARK(BM_JsimJtlTransient)->Arg(4)->Arg(16)->Arg(64);

void
BM_FunctionalConv(benchmark::State &state)
{
    const int hw = (int)state.range(0);
    Rng rng(1);
    functional::Tensor3 ifmap(8, hw, hw);
    ifmap.fillRandom(rng);
    const auto filters = functional::FilterBank::random(8, 8, 3, 3, rng);
    const functional::ConvSpec spec{1, 1};
    functional::FunctionalNpu npu(72, 8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            npu.conv(ifmap, filters, spec).arrayCycles);
    }
}
BENCHMARK(BM_FunctionalConv)->Arg(8)->Arg(16)->Arg(32);

void
BM_EstimateSuperNpu(benchmark::State &state)
{
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    estimator::NpuEstimator estimator(lib);
    const auto config = estimator::NpuConfig::superNpu();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            estimator.estimate(config).frequencyGhz);
    }
}
BENCHMARK(BM_EstimateSuperNpu);

void
BM_SimulateWorkload(benchmark::State &state)
{
    sfq::DeviceConfig dev;
    sfq::CellLibrary lib(dev);
    estimator::NpuEstimator estimator(lib);
    const auto est =
        estimator.estimate(estimator::NpuConfig::superNpu());
    npusim::NpuSimulator sim(est);
    const auto nets = dnn::evaluationWorkloads();
    const dnn::Network &net = nets[(std::size_t)state.range(0)];
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.run(net, 30).totalCycles);
    }
    state.SetLabel(net.name);
}
BENCHMARK(BM_SimulateWorkload)->DenseRange(0, 5);

void
BM_TpuSimulateResNet(benchmark::State &state)
{
    scalesim::TpuSimulator tpu{scalesim::TpuConfig{}};
    const dnn::Network net = dnn::makeResNet50();
    for (auto _ : state) {
        benchmark::DoNotOptimize(tpu.run(net, 20).totalCycles);
    }
}
BENCHMARK(BM_TpuSimulateResNet);

} // namespace

BENCHMARK_MAIN();
