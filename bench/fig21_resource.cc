/**
 * @file
 * Regenerates Fig. 21: resource balancing — shrinking the PE array
 * width while growing the on-chip buffers (the paper's width/buffer
 * pairs: 256/24 MB .. 16/51 MB). Reported: max-batch performance
 * without and with the added buffer capacity, plus the resulting
 * computational intensity. The paper peaks around widths 128-64
 * (47x / 42x over Baseline).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/units.hh"
#include "dnn/analysis.hh"

using namespace supernpu;
using estimator::NpuConfig;

namespace {

NpuConfig
balancedConfig(int width, int total_buffer_mb)
{
    NpuConfig config = NpuConfig::bufferOpt();
    config.name = "w" + std::to_string(width);
    config.peWidth = width;
    const std::uint64_t half =
        (std::uint64_t)total_buffer_mb / 2 * units::MiB;
    config.ifmapBufferBytes = half;
    config.outputBufferBytes =
        (std::uint64_t)total_buffer_mb * units::MiB - half;
    // Keep the output chunk length constant as the width shrinks
    // (Section V-B2: division 64 at width 256 -> 256 at width 64).
    config.outputDivision = 64 * (256 / width);
    config.weightBufferBytes = (std::uint64_t)width * 256;
    return config;
}

/** Average Table II batch over the six workloads. */
double
averageBatch(bench::Pipeline &pipe, const NpuConfig &config)
{
    const auto est = pipe.estimator.estimate(config);
    double total = 0.0;
    for (const auto &net : pipe.workloads)
        total += npusim::maxBatch(config, est, net);
    return total / (double)pipe.workloads.size();
}

} // namespace

int
main()
{
    bench::Pipeline pipe;

    const double base_perf =
        pipe.npuAveragePerf(NpuConfig::baseline(), 1);
    const double base_intensity = [&] {
        double total = 0.0;
        for (const auto &net : pipe.workloads)
            total += dnn::computationalIntensity(net, 1);
        return total / (double)pipe.workloads.size();
    }();

    TextTable table("Fig. 21: resource balancing (vs Baseline)");
    table.row()
        .cell("width, buffer")
        .cell("max-batch (no added buf)")
        .cell("max-batch (added buf)")
        .cell("intensity (added buf)");

    struct Point { int width, buffer_mb; };
    for (Point p : {Point{256, 24}, Point{128, 38}, Point{64, 46},
                    Point{32, 50}, Point{16, 51}}) {
        const NpuConfig fixed = balancedConfig(p.width, 24);
        const NpuConfig added = balancedConfig(p.width, p.buffer_mb);
        // Intensity rises with the larger solvable batch.
        double intensity = 0.0;
        {
            const auto est = pipe.estimator.estimate(added);
            for (const auto &net : pipe.workloads) {
                intensity += dnn::computationalIntensity(
                    net, npusim::maxBatch(added, est, net));
            }
            intensity /= (double)pipe.workloads.size();
        }
        table.row()
            .cell(std::to_string(p.width) + ", " +
                  std::to_string(p.buffer_mb) + " MB")
            .cell(pipe.npuAveragePerf(fixed) / base_perf, 1)
            .cell(pipe.npuAveragePerf(added) / base_perf, 1)
            .cell(intensity / base_intensity, 1);
    }
    table.print();
    std::printf("\n(avg Table II batch at width 64, added buffer:"
                " %.1f)\n",
                averageBatch(pipe, balancedConfig(64, 46)));
    std::printf("paper reference: ~30x without added buffer at narrow"
                " widths; 47x at width 128 and 42x at width 64 with"
                " added buffer; intensity keeps rising as the width"
                " shrinks.\n");
    return 0;
}
