/**
 * @file
 * Scaling study for the parallel sweep engine: run the default
 * Section V design-space sweep at 1/2/4/8 jobs with a cold sim cache
 * each time, report wall-clock speedup over the serial sweep, and
 * verify the ranked output is identical at every job count. A final
 * warm-cache pass shows what memoization alone is worth.
 *
 * Speedups track the machine's real core count: on an N-core box the
 * sweep saturates near min(jobs, N)x, and oversubscribed job counts
 * cost nothing because candidates are independent.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "bench_common.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "npusim/explorer.hh"
#include "npusim/sim_cache.hh"
#include "obs/ledger.hh"

using namespace supernpu;
using Clock = std::chrono::steady_clock;

namespace {

/** Full-precision fingerprint of a ranked candidate list. */
std::string
fingerprint(const std::vector<npusim::Candidate> &ranked)
{
    std::ostringstream out;
    out.precision(17);
    for (const auto &cand : ranked) {
        out << cand.config.name << ' ' << cand.score << ' '
            << cand.avgMacPerSec << ' ' << cand.chipPowerW << ' '
            << cand.areaMm2 << ' ' << cand.operable << '\n';
    }
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string ledger_file;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--ledger") == 0)
            ledger_file = argv[i + 1];
    }

    sfq::DeviceConfig device;
    sfq::CellLibrary library(device);
    npusim::DesignSpaceExplorer explorer(library,
                                         dnn::evaluationWorkloads());
    const npusim::ExplorationSpace space;

    TextTable table("parallel sweep scaling (default Section V space)");
    table.row()
        .cell("jobs")
        .cell("wall (s)")
        .cell("speedup")
        .cell("identical output");

    obs::RunLedger ledger;
    ledger.table("scaling", {"jobs", "wallSec", "speedup",
                             "identical", "poolLoops", "poolTasks"});

    double serial_sec = 0.0;
    std::string serial_print;
    for (int jobs : {1, 2, 4, 8}) {
        npusim::SimCache cold_cache;
        explorer.setCache(&cold_cache);
        ThreadPool pool(jobs);
        const auto start = Clock::now();
        const auto ranked = explorer.explore(
            space, npusim::Objective::Throughput, pool);
        const double sec =
            std::chrono::duration<double>(Clock::now() - start)
                .count();
        const std::string print = fingerprint(ranked);
        if (jobs == 1) {
            serial_sec = sec;
            serial_print = print;
        }
        const auto pool_stats = pool.stats();
        ledger.addRow(
            "scaling",
            {obs::Value::integer((std::uint64_t)jobs),
             obs::Value::real(sec),
             obs::Value::real(serial_sec / sec),
             obs::Value::integer(print == serial_print ? 1 : 0),
             obs::Value::integer(pool_stats.loops),
             obs::Value::integer(pool_stats.tasks)});
        table.row()
            .cell((long long)jobs)
            .cell(sec, 2)
            .cell(serial_sec / sec, 2)
            .cell(print == serial_print ? "yes" : "NO");
    }

    // Warm pass: the whole sweep out of the cache.
    {
        npusim::SimCache warm_cache;
        explorer.setCache(&warm_cache);
        explorer.explore(space, npusim::Objective::Throughput, 1);
        const auto cold = warm_cache.stats();
        const auto start = Clock::now();
        explorer.explore(space, npusim::Objective::PerfPerWatt, 1);
        const double sec =
            std::chrono::duration<double>(Clock::now() - start)
                .count();
        const auto warm = warm_cache.stats();
        obs::addSimCacheStats(ledger, warm);
        table.row()
            .cell("warm")
            .cell(sec, 2)
            .cell(serial_sec / sec, 1)
            .cell("yes (re-ranked)");
        table.print();
        std::printf("\nwarm pass: %llu cache hits, %llu misses —"
                    " re-ranking a swept space costs no simulation.\n",
                    (unsigned long long)(warm.hits - cold.hits),
                    (unsigned long long)(warm.misses - cold.misses));
    }

    std::printf("%d hardware threads on this machine\n",
                ThreadPool::hardwareConcurrency());
    std::printf("\ntakeaway: candidates are independent, so the sweep"
                " scales with cores at identical (bit-for-bit) ranked"
                " output; the memoized sim cache then makes repeated"
                " sweeps — other objectives, serving warm-up — nearly"
                " free.\n");

    if (!ledger_file.empty()) {
        ledger.setText("bench", "name", "sweep_scaling");
        ledger.setInt("bench", "hardwareThreads",
                      (std::uint64_t)ThreadPool::hardwareConcurrency());
        if (!ledger.write(ledger_file))
            fatal("cannot write ledger '", ledger_file, "'");
        std::printf("wrote ledger to %s\n", ledger_file.c_str());
    }
    return 0;
}
