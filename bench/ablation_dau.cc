/**
 * @file
 * Ablation: the data alignment unit's value.
 *
 * Without the DAU, every ifmap buffer row must hold its PE row's
 * full (duplicated) pixel stream: the effective ifmap capacity
 * shrinks by the Fig. 8 duplication factor (>5x for spatial convs).
 * This bench resolves the Table II batch and the end-to-end
 * throughput with and without the DAU's deduplication.
 */

#include <cstdio>

#include "bench_common.hh"
#include "dnn/analysis.hh"

using namespace supernpu;
using estimator::NpuConfig;

int
main()
{
    bench::Pipeline pipe;
    const NpuConfig with_dau = NpuConfig::superNpu();
    const auto est_with = pipe.estimator.estimate(with_dau);
    npusim::NpuSimulator sim_with(est_with);

    TextTable table("ablation: data alignment unit (SuperNPU)");
    table.row()
        .cell("workload")
        .cell("dup factor")
        .cell("batch w/ DAU")
        .cell("batch w/o DAU")
        .cell("TMAC/s w/ DAU")
        .cell("TMAC/s w/o DAU")
        .cell("DAU gain");

    double gain_sum = 0.0;
    for (const auto &net : pipe.workloads) {
        // Without deduplication the stored stream inflates by
        // naive/unique; model it as a proportionally smaller ifmap
        // buffer when solving the batch and costing the fills.
        const double dup = dnn::networkDuplicatedRatio(net);
        const double inflation = 1.0 / (1.0 - dup);

        NpuConfig without_dau = with_dau;
        without_dau.name = "SuperNPU-noDAU";
        without_dau.ifmapBufferBytes = (std::uint64_t)(
            (double)with_dau.ifmapBufferBytes / inflation);
        const auto est_without =
            pipe.estimator.estimate(without_dau);
        npusim::NpuSimulator sim_without(est_without);

        const int batch_with =
            npusim::maxBatch(with_dau, est_with, net);
        const int batch_without =
            npusim::maxBatch(without_dau, est_without, net);

        const double perf_with =
            sim_with.run(net, batch_with).effectiveMacPerSec();
        const double perf_without =
            sim_without.run(net, batch_without).effectiveMacPerSec();
        gain_sum += perf_with / perf_without /
                    (double)pipe.workloads.size();

        table.row()
            .cell(net.name)
            .cell(inflation, 1)
            .cell(batch_with)
            .cell(batch_without)
            .cell(perf_with / 1e12, 1)
            .cell(perf_without / 1e12, 1)
            .cell(perf_with / perf_without, 2);
    }
    table.print();
    std::printf("\ntakeaway: deduplicating ifmap storage through the"
                " DAU is worth %.2fx on average — without it the"
                " buffer capacity the other optimizations rely on"
                " evaporates (Fig. 8's motivation).\n",
                gain_sum);
    return 0;
}
