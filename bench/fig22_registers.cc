/**
 * @file
 * Regenerates Fig. 22: performance versus the number of weight
 * registers per PE, for the width-64 (46 MB) and width-128 (38 MB)
 * candidates. The paper: width 64 climbs from ~42x to ~55x and
 * saturates around 8 registers; width 128 stays nearly flat (its
 * lower computational intensity leaves it memory-bound).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/units.hh"

using namespace supernpu;
using estimator::NpuConfig;

namespace {

NpuConfig
candidate(int width, int buffer_mb, int regs)
{
    NpuConfig config = NpuConfig::bufferOpt();
    config.name = "w" + std::to_string(width) + "r" +
                  std::to_string(regs);
    config.peWidth = width;
    const std::uint64_t half =
        (std::uint64_t)buffer_mb / 2 * units::MiB;
    config.ifmapBufferBytes = half;
    config.outputBufferBytes =
        (std::uint64_t)buffer_mb * units::MiB - half;
    config.outputDivision = 64 * (256 / width);
    config.regsPerPe = regs;
    config.weightBufferBytes =
        (std::uint64_t)width * 256 * (std::uint64_t)regs;
    return config;
}

} // namespace

int
main()
{
    bench::Pipeline pipe;
    const double base_perf =
        pipe.npuAveragePerf(NpuConfig::baseline(), 1);

    TextTable table("Fig. 22: weight registers per PE (vs Baseline)");
    table.row()
        .cell("# regs")
        .cell("width 64 (46 MB)")
        .cell("width 128 (38 MB)");

    for (int regs : {1, 2, 4, 8, 16, 32}) {
        table.row()
            .cell(regs)
            .cell(pipe.npuAveragePerf(candidate(64, 46, regs)) /
                      base_perf, 1)
            .cell(pipe.npuAveragePerf(candidate(128, 38, regs)) /
                      base_perf, 1);
    }
    table.print();
    std::printf("\npaper reference: width 64 rises and saturates near 8"
                " registers (the SuperNPU choice); width 128 is flat,"
                " bounded by memory bandwidth.\n");
    return 0;
}
