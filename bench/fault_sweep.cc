/**
 * @file
 * Availability / goodput sweep across fault rates and recovery
 * policies: the reliability counterpart of the serving tail-latency
 * bench. One seeded fault schedule is generated per fault-rate row
 * and shared by every policy in that row, so the policies face the
 * exact same fault sequence and the comparison isolates the policy.
 *
 * The grid is embarrassingly parallel and runs on the common
 * ThreadPool; each cell is a deterministic discrete-event run, so
 * the printed table is byte-identical at any --jobs count and across
 * reruns — verified at the bottom of the output, the same discipline
 * as sweep_scaling.
 *
 * --smoke shrinks the grid and request count for CI.
 */

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "obs/audit.hh"
#include "obs/ledger.hh"
#include "reliability/fault_model.hh"
#include "serving/simulator.hh"

using namespace supernpu;

namespace {

/** One recovery policy column of the sweep. */
struct PolicyCase
{
    const char *label;
    serving::RecoveryPolicy recovery;
    bool checkpoint;
};

/** Full-precision fingerprint of one cell's report. */
void
fingerprintCell(std::ostringstream &out,
                const serving::ServingReport &report)
{
    out.precision(17);
    out << report.availability << ' ' << report.goodputRps << ' '
        << report.throughputRps << ' ' << report.latencyP99 << ' '
        << report.failedRequests << ' ' << report.retriesTotal << ' '
        << report.batchesKilled << ' ' << report.restarts << ' '
        << report.redispatches << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string ledger_file;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--ledger") == 0 && i + 1 < argc)
            ledger_file = argv[i + 1];
    }

    // A small two-conv workload keeps every cycle simulation cheap;
    // the serving dynamics, not the network, are under study.
    dnn::Network net;
    net.name = "FaultNet";
    net.layers = {dnn::conv("c1", 3, 16, 16, 3),
                  dnn::conv("c2", 16, 16, 16, 3)};
    net.check();

    bench::Pipeline pipeline;
    const estimator::NpuConfig config =
        estimator::NpuConfig::superNpu();
    const estimator::NpuEstimate estimate =
        pipeline.estimator.estimate(config);
    const int max_batch = npusim::maxBatch(config, estimate, net);
    serving::BatchServiceModel service(estimate, net);

    // Offered load sits at 60% of aggregate capacity so chips are
    // busy often enough for transient faults to land on in-flight
    // batches, and fault rates are expressed per run makespan so the
    // expected event counts do not depend on how fast the tiny
    // network happens to simulate.
    const int chips = 4;
    const std::uint64_t requests = smoke ? 4000 : 20000;
    const double batch_sec = service.batchSeconds(max_batch);
    const double rps = 0.6 * chips * (double)max_batch / batch_sec;
    const double makespan = (double)requests / rps;
    const std::vector<double> rate_scales =
        smoke ? std::vector<double>{0.0, 4.0}
              : std::vector<double>{0.0, 1.0, 4.0, 16.0};
    const std::vector<PolicyCase> policies = {
        {"none", serving::RecoveryPolicy::None, false},
        {"retry", serving::RecoveryPolicy::RetryBackoff, false},
        {"retry+ckpt", serving::RecoveryPolicy::RetryBackoff, true},
        {"degraded", serving::RecoveryPolicy::DegradedDispatch, false},
    };

    // One schedule per fault-rate row, shared by every policy: the
    // seed depends only on the row, never on the policy or the job
    // count.
    std::vector<reliability::FaultSchedule> schedules;
    for (std::size_t row = 0; row < rate_scales.size(); ++row) {
        reliability::FaultScheduleConfig fault_cfg;
        fault_cfg.chips = chips;
        fault_cfg.seed = streamSeed(0xfa017c0de, (std::uint64_t)row);
        fault_cfg.horizonSec = makespan;
        // Per-chip expected counts over one makespan at scale 1:
        // ~40 pulse drops, ~0.25 flux traps (one trap somewhere in
        // the 4-chip fleet), ~8 skew windows, ~20 link glitches.
        const double scale = rate_scales[row] / makespan;
        fault_cfg.pulseDropRatePerSec = 40.0 * scale;
        fault_cfg.fluxTrapRatePerSec = 0.25 * scale;
        fault_cfg.clockSkewRatePerSec = 8.0 * scale;
        fault_cfg.linkGlitchRatePerSec = 20.0 * scale;
        // Durations likewise scale with the workload: a skew window
        // covers a handful of batches, a glitch stalls half a batch.
        fault_cfg.clockSkewDurationSec = 4.0 * batch_sec;
        fault_cfg.linkGlitchDelaySec = 0.5 * batch_sec;
        schedules.push_back(
            reliability::FaultSchedule::generate(fault_cfg));
    }

    const auto run_cell = [&](std::size_t row, std::size_t col) {
        serving::ServingConfig serve;
        serve.arrival.ratePerSec = rps;
        serve.chips = chips;
        serve.requests = requests;
        serve.batching.maxBatch = max_batch;
        serve.faults = schedules[row];
        serve.resilience.recovery = policies[col].recovery;
        serve.resilience.checkpointRestart = policies[col].checkpoint;
        // Resilience timescales track the batch service time:
        // detection beats batch completion, backoff is one batch,
        // checkpoints quarter a batch.
        serve.resilience.detectLatencySec = 0.25 * batch_sec;
        serve.resilience.backoffBaseSec = batch_sec;
        serve.resilience.checkpointIntervalSec = 0.25 * batch_sec;
        return serving::ServingSimulator(service, serve).run();
    };

    const std::size_t cells = rate_scales.size() * policies.size();
    const auto run_grid = [&](int jobs) {
        ThreadPool pool(jobs);
        return pool.parallelMap(cells, [&](std::size_t i) {
            return run_cell(i / policies.size(), i % policies.size());
        });
    };

    const auto grid = run_grid(1);

    TextTable table("availability and goodput vs fault rate");
    table.row()
        .cell("rate x")
        .cell("policy")
        .cell("faults")
        .cell("killed")
        .cell("retries")
        .cell("failed")
        .cell("avail %")
        .cell("goodput r/s")
        .cell("p99 ms");
    obs::RunLedger ledger;
    ledger.table("grid",
                 {"rateScale", "policy", "faultsScheduled",
                  "faultsInjected", "batchesKilled", "requestsKilled",
                  "retries", "retryGiveUps", "restarts",
                  "redispatches", "failedRequests", "availability",
                  "goodputRps", "p99Sec"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto &report = grid[i];
        // Every cell must satisfy the conservation invariants.
        obs::enforce(obs::auditServing(report), "fault_sweep");
        ledger.addRow(
            "grid",
            {obs::Value::real(rate_scales[i / policies.size()]),
             obs::Value::text(policies[i % policies.size()].label),
             obs::Value::integer(report.faultsScheduled),
             obs::Value::integer(report.faultsInjected),
             obs::Value::integer(report.batchesKilled),
             obs::Value::integer(report.requestsKilled),
             obs::Value::integer(report.retriesTotal),
             obs::Value::integer(report.retryGiveUps),
             obs::Value::integer(report.restarts),
             obs::Value::integer(report.redispatches),
             obs::Value::integer(report.failedRequests),
             obs::Value::real(report.availability),
             obs::Value::real(report.goodputRps),
             obs::Value::real(report.latencyP99)});
        table.row()
            .cell(rate_scales[i / policies.size()], 0)
            .cell(policies[i % policies.size()].label)
            .cell(report.faultsInjected)
            .cell(report.batchesKilled)
            .cell(report.retriesTotal)
            .cell(report.failedRequests)
            .cell(report.availability * 100.0, 2)
            .cell(report.goodputRps, 0)
            .cell(report.latencyP99 * 1e3, 4);
    }
    table.print();

    // Determinism: the same grid at full parallelism and on a rerun
    // must reproduce every cell bit for bit.
    const auto print_of = [&](const auto &reports) {
        std::ostringstream out;
        for (const auto &report : reports)
            fingerprintCell(out, report);
        return out.str();
    };
    const std::string serial = print_of(grid);
    const bool parallel_same =
        print_of(run_grid(ThreadPool::hardwareConcurrency())) == serial;
    const bool rerun_same = print_of(run_grid(1)) == serial;
    std::printf("\nidentical across jobs: %s; across reruns: %s\n",
                parallel_same ? "yes" : "NO",
                rerun_same ? "yes" : "NO");

    std::printf("\ntakeaway: with no recovery every corrupted batch"
                " ships garbage, so failed requests scale with the"
                " fault rate; retry+backoff wins most of the goodput"
                " back at a latency-tail cost, checkpointing does the"
                " same with no re-queue storm, and degraded dispatch"
                " writes off quarantined chips (lower availability)"
                " to stop feeding work to trapped hardware.\n");

    if (!ledger_file.empty()) {
        ledger.setText("bench", "name", "fault_sweep");
        ledger.setInt("bench", "chips", (std::uint64_t)chips);
        ledger.setInt("bench", "requests", requests);
        ledger.setInt("bench", "smoke", smoke ? 1 : 0);
        if (!ledger.write(ledger_file))
            fatal("cannot write ledger '", ledger_file, "'");
        std::printf("wrote ledger to %s\n", ledger_file.c_str());
    }
    return (parallel_same && rerun_same) ? 0 : 1;
}
