/**
 * @file
 * Ablation: long-range on-chip interconnect.
 *
 * In CMOS, a long wire bounds the clock: one logic value per wire.
 * An SFQ PTL is a pulse pipeline — many pulses fly concurrently, so
 * the link latency never limits frequency; only the residual
 * data-vs-clock skew of the co-routed pair enters the Eq. (1)
 * budget. This bench sweeps the buffer-to-array link length and
 * prints the in-flight pulse count, the skew, and the clock the link
 * would support, contrasting co-routed clocking against a naive
 * separately-routed clock.
 */

#include <cstdio>

#include "bench_common.hh"
#include "sfq/clocking.hh"
#include "sfq/ptl.hh"

using namespace supernpu;
using sfq::ClockScheme;
using sfq::GateKind;
using sfq::GatePair;

int
main()
{
    bench::Pipeline pipe;

    TextTable table("ablation: PTL link length (buffer -> PE array)");
    table.row()
        .cell("length (mm)")
        .cell("latency (ps)")
        .cell("pulses in flight @52.6GHz")
        .cell("co-routed skew (ps)")
        .cell("link clock, co-routed (GHz)")
        .cell("link clock, naive (GHz)");

    for (double mm : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
        sfq::PtlModel ptl(pipe.library, mm);

        // Co-routed: the clock line runs alongside; delta_t is only
        // the residual mismatch.
        GatePair co = sfq::makePair(pipe.library, "co-routed",
                                    GateKind::DFF, GateKind::DFF, {},
                                    0.0, ClockScheme::ConcurrentFlow);
        co.dataWireDelay = ptl.delayPs();
        co.clockPathDelay = ptl.delayPs() - ptl.coRoutedSkewPs();

        // Naive: the clock arrives through the short global spine;
        // the whole link latency lands in delta_t.
        GatePair naive = co;
        naive.clockPathDelay = 0.0;

        table.row()
            .cell(mm, 1)
            .cell(ptl.delayPs(), 1)
            .cell(ptl.pulsesInFlight(52.6), 1)
            .cell(ptl.coRoutedSkewPs(), 2)
            .cell(sfq::pairFrequencyGhz(co), 1)
            .cell(sfq::pairFrequencyGhz(naive), 1);
    }
    table.print();
    std::printf("\ntakeaway: with co-routed clocking even a 20 mm link"
                " sustains the 52.6 GHz core clock while carrying"
                " ten-plus pulses in flight; routing the clock"
                " separately collapses the link to single-digit GHz —"
                " the Section II-B2 property that makes the whole"
                " architecture possible.\n");
    return 0;
}
