/**
 * @file
 * Ablation: what the clocking/dataflow choices are worth end to end.
 *
 * The paper picks the weight-stationary PE because the output-
 * stationary PE's accumulator feedback loop forces counter-flow
 * clocking (Fig. 6/7), halving the achievable clock. This bench
 * quantifies that decision at the system level: the same SuperNPU
 * microarchitecture is simulated at the WS clock and at the
 * counter-flow clock an OS PE would impose.
 */

#include <cstdio>

#include "bench_common.hh"
#include "sfq/clocking.hh"

using namespace supernpu;
using sfq::ClockScheme;
using sfq::GateKind;
using sfq::GatePair;

int
main()
{
    bench::Pipeline pipe;
    const auto config = estimator::NpuConfig::superNpu();
    const auto ws_estimate = pipe.estimator.estimate(config);

    // The OS PE's accumulator loop: the same critical MAC arc but
    // counter-flow clocked, with the clock retracing the loop.
    GatePair os_pair = sfq::makePair(
        pipe.library, "OS accumulate loop", GateKind::AND,
        GateKind::XOR,
        {GateKind::SPLITTER, GateKind::MERGER, GateKind::JTL}, 0.0,
        ClockScheme::CounterFlow);
    os_pair.clockPathDelay =
        os_pair.driverDelay + os_pair.dataWireDelay + 5.5;
    const double os_ghz = sfq::pairFrequencyGhz(os_pair);

    auto os_estimate = ws_estimate;
    os_estimate.frequencyGhz = os_ghz;
    os_estimate.peakMacPerSec =
        (double)config.peCount() * os_ghz * 1e9;

    TextTable table("ablation: PE dataflow / clocking scheme");
    table.row()
        .cell("design")
        .cell("PE clock (GHz)")
        .cell("avg effective TMAC/s")
        .cell("relative");

    npusim::NpuSimulator ws_sim(ws_estimate);
    npusim::NpuSimulator os_sim(os_estimate);
    double ws_perf = 0.0, os_perf = 0.0;
    for (const auto &net : pipe.workloads) {
        const int batch = npusim::maxBatch(config, ws_estimate, net);
        ws_perf += ws_sim.run(net, batch).effectiveMacPerSec() /
                   (double)pipe.workloads.size();
        os_perf += os_sim.run(net, batch).effectiveMacPerSec() /
                   (double)pipe.workloads.size();
    }

    table.row()
        .cell("WS PE, concurrent-flow (paper)")
        .cell(ws_estimate.frequencyGhz, 1)
        .cell(ws_perf / 1e12, 1)
        .cell(1.0, 2);
    table.row()
        .cell("OS PE, counter-flow (ablated)")
        .cell(os_ghz, 1)
        .cell(os_perf / 1e12, 1)
        .cell(os_perf / ws_perf, 2);
    table.print();

    std::printf("\ntakeaway: the feedback-free WS datapath buys a"
                " %.1fx clock and %.2fx end-to-end throughput over an"
                " OS design on identical resources.\n",
                ws_estimate.frequencyGhz / os_ghz, ws_perf / os_perf);
    return 0;
}
