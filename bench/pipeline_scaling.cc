/**
 * @file
 * Pipeline-parallel scaling of ResNet50 across multi-chip groups:
 * steady-state inference throughput, fill latency, and link overhead
 * as the same network is split over K = 1, 2, 4, 8 chips by the
 * bottleneck-minimizing partitioner (src/partition).
 *
 * Each K row partitions at the single-chip Table II batch and
 * streams a batch train through the analytic pipeline composition;
 * every row's conservation invariants are enforced through
 * obs::auditPipeline, and the headline acceptance property — steady
 * throughput is monotonically non-decreasing from K=1 to K=4 — is a
 * hard failure, checked before the takeaway prints. The sweep runs
 * twice on fresh simulation caches and must reproduce every row bit
 * for bit, the same determinism discipline as sweep_scaling.
 *
 * --smoke shrinks the K list and stream length for CI.
 */

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/logging.hh"
#include "obs/audit.hh"
#include "obs/ledger.hh"
#include "partition/pipeline_sim.hh"

using namespace supernpu;

namespace {

/** Full-precision fingerprint of one K row. */
void
fingerprintRow(std::ostringstream &out,
               const partition::PipelineResult &run)
{
    out.precision(17);
    out << run.plan.stageCount() << ' ' << run.plan.bottleneckStage
        << ' ' << run.plan.bottleneckCycles << ' '
        << run.plan.fillCycles << ' ' << run.makespanCycles << ' '
        << run.totalLinkCycles << ' ' << run.steadyInferencesPerSec()
        << '\n';
    for (const auto &stage : run.plan.stages) {
        out << stage.firstLayer << '-' << stage.lastLayer << ':'
            << stage.stageCycles << ':' << stage.linkBytes << ' ';
    }
    out << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string ledger_file;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--ledger") == 0 && i + 1 < argc)
            ledger_file = argv[i + 1];
    }

    bench::Pipeline pipeline;
    const estimator::NpuConfig config =
        estimator::NpuConfig::superNpu();
    const estimator::NpuEstimate estimate =
        pipeline.estimator.estimate(config);
    const dnn::Network net = dnn::makeResNet50();
    const int batch = npusim::maxBatch(config, estimate, net);
    const int batches = smoke ? 16 : 64;
    const std::vector<int> stage_counts =
        smoke ? std::vector<int>{1, 2, 4}
              : std::vector<int>{1, 2, 4, 8};

    // Each sweep pass partitions on its own fresh cache — the honest
    // mode for a scaling study, and what makes the rerun comparison
    // meaningful rather than a cache replay.
    const auto run_sweep = [&]() {
        std::vector<partition::PipelineResult> rows;
        npusim::SimCache cache(256);
        partition::PipelineSimulator sim(estimate, {}, &cache);
        for (int stages : stage_counts)
            rows.push_back(sim.run(net, stages, batch, batches));
        return rows;
    };

    const auto rows = run_sweep();

    std::printf("%s on %s, batch %d, %d-batch stream, link"
                " %.0f GB/s\n\n",
                net.name.c_str(), config.name.c_str(), batch, batches,
                partition::LinkConfig{}.bandwidthGBps);
    TextTable table("pipeline scaling");
    table.row()
        .cell("K")
        .cell("inf/s")
        .cell("speedup")
        .cell("fill us")
        .cell("link cyc/batch")
        .cell("bottleneck stage");
    obs::RunLedger ledger;
    ledger.table("scaling",
                 {"stages", "steadyInfPerSec", "speedup",
                  "fillLatencySec", "bottleneckStage",
                  "bottleneckCycles", "totalLinkCycles",
                  "makespanCycles"});
    const double solo = rows.front().steadyInferencesPerSec();
    for (const auto &run : rows) {
        // Every row must satisfy the pipeline conservation laws.
        obs::enforce(obs::auditPipeline(run), "pipeline_scaling");
        table.row()
            .cell((long long)run.plan.stageCount())
            .cell(run.steadyInferencesPerSec(), 0)
            .cell(run.steadyInferencesPerSec() / solo, 2)
            .cell(run.plan.fillLatencySec() * 1e6, 2)
            .cell((unsigned long long)run.totalLinkCycles)
            .cell((long long)run.plan.bottleneckStage);
        ledger.addRow(
            "scaling",
            {obs::Value::integer((std::uint64_t)run.plan.stageCount()),
             obs::Value::real(run.steadyInferencesPerSec()),
             obs::Value::real(run.steadyInferencesPerSec() / solo),
             obs::Value::real(run.plan.fillLatencySec()),
             obs::Value::integer((std::uint64_t)run.plan.bottleneckStage),
             obs::Value::integer(run.plan.bottleneckCycles),
             obs::Value::integer(run.totalLinkCycles),
             obs::Value::integer(run.makespanCycles)});
    }
    table.print();

    // Acceptance property: splitting ResNet50 over more chips never
    // loses steady throughput from K=1 up through K=4. A violation
    // is a hard failure, not a footnote.
    for (std::size_t i = 1; i < rows.size(); ++i) {
        if (rows[i].plan.stageCount() > 4)
            break;
        if (rows[i].steadyInferencesPerSec() <
            rows[i - 1].steadyInferencesPerSec()) {
            fatal("throughput regressed from K=",
                  rows[i - 1].plan.stageCount(), " to K=",
                  rows[i].plan.stageCount());
        }
    }

    // Determinism: a rerun on a fresh cache must reproduce every row
    // bit for bit.
    const auto print_of = [&](const auto &results) {
        std::ostringstream out;
        for (const auto &run : results)
            fingerprintRow(out, run);
        return out.str();
    };
    const bool rerun_same = print_of(run_sweep()) == print_of(rows);
    std::printf("\nidentical across reruns: %s\n",
                rerun_same ? "yes" : "NO");

    std::printf("\ntakeaway: the min-max partitioner keeps the"
                " bottleneck stage near 1/K of the network, so steady"
                " throughput grows monotonically with pipeline depth;"
                " the 300 GB/s inter-chip link costs a few percent"
                " per cut, and what scaling gives up instead is fill"
                " latency, which grows with every extra stage the"
                " first batch must traverse.\n");

    if (!ledger_file.empty()) {
        ledger.setText("bench", "name", "pipeline_scaling");
        ledger.setText("bench", "network", net.name);
        ledger.setInt("bench", "batch", (std::uint64_t)batch);
        ledger.setInt("bench", "batches", (std::uint64_t)batches);
        ledger.setInt("bench", "smoke", smoke ? 1 : 0);
        if (!ledger.write(ledger_file))
            fatal("cannot write ledger '", ledger_file, "'");
        std::printf("wrote ledger to %s\n", ledger_file.c_str());
    }
    return rerun_same ? 0 : 1;
}
