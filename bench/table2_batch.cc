/**
 * @file
 * Regenerates Table II: the maximum input batch each design holds
 * on-chip without extra off-chip memory accesses, per workload.
 * Paper: TPU 22/20/.../3; Baseline all 1; Buffer opt. 15/3/3/3/3/1;
 * Resource opt. and SuperNPU 30 everywhere except VGG16's 7.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace supernpu;

int
main()
{
    bench::Pipeline pipe;

    TextTable table("Table II: workload setup (max batch size)");
    table.row()
        .cell("workload")
        .cell("TPU")
        .cell("Baseline")
        .cell("Buffer opt.")
        .cell("Resource opt.")
        .cell("SuperNPU");

    const auto configs = bench::tableOneConfigs();
    for (const auto &net : pipe.workloads) {
        auto &row = table.row();
        row.cell(net.name);
        row.cell(npusim::maxBatchUnified(
            pipe.tpuConfig.unifiedBufferBytes, net));
        for (const auto &config : configs) {
            const auto est = pipe.estimator.estimate(config);
            row.cell(npusim::maxBatch(config, est, net));
        }
    }
    table.print();
    std::printf("\npaper reference: TPU 22/20/20/20/20/3; Baseline all"
                " 1; Buffer opt. 15/3/3/3/3/1; Resource opt. and"
                " SuperNPU 30 everywhere except VGG16 at 7.\n");
    return 0;
}
