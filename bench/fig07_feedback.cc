/**
 * @file
 * Regenerates Fig. 7(c): the feedback loop's impact on SFQ circuit
 * frequency. A full adder and a shift register are timed under
 * concurrent-flow clocking (no feedback) and counter-flow clocking
 * (feedback-safe). Paper values: FA 66 -> 30 GHz, SR 133 -> 71 GHz.
 *
 * As supporting evidence, the binary also runs the analog JJ
 * transient simulator on a JTL chain and a DFF to demonstrate the
 * pulse behaviour the timing model abstracts.
 */

#include <cstdio>

#include "bench_common.hh"
#include "jsim/cells.hh"
#include "jsim/experiments.hh"
#include "sfq/clocking.hh"

using namespace supernpu;
using sfq::ClockScheme;
using sfq::GateKind;
using sfq::GatePair;

namespace {

double
fullAdderGhz(const sfq::CellLibrary &lib, bool feedback)
{
    GatePair pair = sfq::makePair(
        lib, "FA", GateKind::AND, GateKind::XOR,
        {GateKind::SPLITTER, GateKind::MERGER, GateKind::JTL}, 0.0,
        feedback ? ClockScheme::CounterFlow
                 : ClockScheme::ConcurrentFlow);
    if (feedback) {
        // The clock retraces the loop: data path + feedback return.
        pair.clockPathDelay =
            pair.driverDelay + pair.dataWireDelay + 5.5;
    }
    return sfq::pairFrequencyGhz(pair);
}

double
shiftRegisterGhz(const sfq::CellLibrary &lib, bool feedback)
{
    GatePair pair = sfq::makePair(
        lib, "SR", GateKind::DFF, GateKind::DFF, {GateKind::JTL}, 0.0,
        feedback ? ClockScheme::CounterFlow
                 : ClockScheme::ConcurrentFlow);
    if (feedback) {
        pair.clockPathDelay = lib.gate(GateKind::DFF).delay +
                              lib.gate(GateKind::JTL).delay +
                              lib.gate(GateKind::SPLITTER).delay;
    }
    return sfq::pairFrequencyGhz(pair);
}

} // namespace

int
main()
{
    bench::Pipeline pipe;

    TextTable table("Fig. 7(c): feedback loop's frequency impact (GHz)");
    table.row()
        .cell("circuit")
        .cell("without feedback")
        .cell("with feedback")
        .cell("paper w/o")
        .cell("paper w/");
    table.row()
        .cell("full adder (FA)")
        .cell(fullAdderGhz(pipe.library, false), 1)
        .cell(fullAdderGhz(pipe.library, true), 1)
        .cell("66")
        .cell("30");
    table.row()
        .cell("shift register (SR)")
        .cell(shiftRegisterGhz(pipe.library, false), 1)
        .cell(shiftRegisterGhz(pipe.library, true), 1)
        .cell("133")
        .cell("71");
    table.print();

    // --- analog demonstration (JSIM substitute) ----------------------
    std::printf("\nanalog JJ transient demo (jsim):\n");
    {
        jsim::DeviceParams params;
        jsim::Circuit circuit;
        const jsim::JtlChain chain =
            jsim::appendJtl(circuit, params, 10, "J");
        jsim::attachPulseInput(circuit, params, chain.input, {50e-12});
        jsim::TransientConfig config;
        config.duration = 150e-12;
        jsim::TransientSimulator sim(circuit, config);
        const auto result = sim.run();
        const double delay = jsim::propagationDelay(
            result, chain.junctionIndices.front(),
            chain.junctionIndices.back());
        std::printf("  JTL: 1 SFQ pulse through 10 stages, "
                    "%.2f ps/stage, %.2f aJ dissipated\n",
                    delay / 9.0 * 1e12,
                    sim.switchingEnergy(result) * 1e18);
    }
    {
        jsim::DeviceParams params;
        jsim::Circuit circuit;
        jsim::JtlChain data = jsim::appendJtl(circuit, params, 3, "D");
        jsim::attachPulseInput(circuit, params, data.input, {50e-12});
        jsim::JtlChain clock = jsim::appendJtl(circuit, params, 3, "C");
        jsim::attachPulseInput(circuit, params, clock.input,
                               {100e-12, 180e-12});
        const jsim::Dff dff =
            jsim::appendDff(circuit, params, jsim::DffParams{}, "F");
        circuit.addInductor(data.output, dff.dataIn,
                            params.jtlInductance);
        circuit.addInductor(clock.output, dff.clockIn,
                            params.jtlInductance);
        jsim::appendJtlFrom(circuit, params, dff.output, 2, "O");
        jsim::TransientConfig config;
        config.duration = 250e-12;
        jsim::TransientSimulator sim(circuit, config);
        const auto result = sim.run();
        std::printf("  DFF: data@50ps clock@100,180ps -> stored %zu, "
                    "released %zu (second clock absorbed: Fig. 1(d))\n",
                    result.switchCount(dff.storeJunction),
                    result.switchCount(dff.releaseJunction));
    }
    {
        // The Fig. 7 effect measured from actual junction dynamics:
        // overclock a two-stage shift register until bits drop.
        const double concurrent =
            jsim::maxShiftClockGhz(jsim::ClockRouting::Concurrent);
        const double counter =
            jsim::maxShiftClockGhz(jsim::ClockRouting::CounterFlow);
        std::printf("  2-stage SR max clock (analog): %.0f GHz "
                    "concurrent-flow vs %.0f GHz counter-flow\n",
                    concurrent, counter);
    }
    {
        // Cell robustness: operating margins of the storage loop.
        const jsim::Margin bias =
            jsim::dffParameterMargin(jsim::DffParameter::LoopBias);
        const jsim::Margin ic =
            jsim::dffParameterMargin(jsim::DffParameter::ReleaseIc);
        std::printf("  DFF operating margins: loop bias -%.0f%%/+%.0f%%,"
                    " release Ic -%.0f%%/+%.0f%%\n",
                    bias.lowPercent, bias.highPercent, ic.lowPercent,
                    ic.highPercent);
    }
    return 0;
}
