/**
 * @file
 * Regenerates Table I: the evaluation setup — architectural
 * parameters, achievable clock, peak performance, and 28 nm-
 * equivalent area of the TPU comparator and the four SFQ designs.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/units.hh"

using namespace supernpu;

int
main()
{
    bench::Pipeline pipe;

    TextTable table("Table I: evaluation setup");
    table.row()
        .cell("parameter")
        .cell("TPU")
        .cell("Baseline")
        .cell("Buffer opt.")
        .cell("Resource opt.")
        .cell("SuperNPU");

    const auto configs = bench::tableOneConfigs();
    std::vector<estimator::NpuEstimate> estimates;
    for (const auto &config : configs)
        estimates.push_back(pipe.estimator.estimate(config));

    auto add = [&](const std::string &name, auto tpu_value,
                   auto value_of) {
        auto &row = table.row();
        row.cell(name);
        row.cell(tpu_value);
        for (std::size_t i = 0; i < configs.size(); ++i)
            row.cell(value_of(configs[i], estimates[i]));
    };

    using estimator::NpuConfig;
    using estimator::NpuEstimate;

    add("PE array width", std::string("256"),
        [](const NpuConfig &c, const NpuEstimate &) {
            return std::to_string(c.peWidth);
        });
    add("PE array height", std::string("256"),
        [](const NpuConfig &c, const NpuEstimate &) {
            return std::to_string(c.peHeight);
        });
    add("Ifmap buffer", std::string("24 MiB (unified)"),
        [](const NpuConfig &c, const NpuEstimate &) {
            return units::bytesHuman(c.ifmapBufferBytes);
        });
    add("Output-side buffer", std::string("(unified)"),
        [](const NpuConfig &c, const NpuEstimate &) {
            const std::string kind =
                c.integratedOutputBuffer ? " (integrated)"
                                         : " (psum+ofmap)";
            return units::bytesHuman(c.outputSideBytes()) + kind;
        });
    add("Weight buffer", std::string("-"),
        [](const NpuConfig &c, const NpuEstimate &) {
            return units::bytesHuman(c.weightBufferBytes);
        });
    add("# regs in PE", std::string("1"),
        [](const NpuConfig &c, const NpuEstimate &) {
            return std::to_string(c.regsPerPe);
        });
    add("Buffer division (if/out)", std::string("-"),
        [](const NpuConfig &c, const NpuEstimate &) {
            return std::to_string(c.ifmapDivision) + "/" +
                   std::to_string(c.outputDivision);
        });

    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f",
                  pipe.tpuConfig.frequencyGhz);
    add("Frequency (GHz)", std::string(buf),
        [](const NpuConfig &, const NpuEstimate &e) {
            char b[64];
            std::snprintf(b, sizeof(b), "%.1f", e.frequencyGhz);
            return std::string(b);
        });
    std::snprintf(buf, sizeof(buf), "%.0f",
                  pipe.tpuConfig.peakMacPerSec() / 1e12);
    add("Peak perf (TMAC/s)", std::string(buf),
        [](const NpuConfig &, const NpuEstimate &e) {
            char b[64];
            std::snprintf(b, sizeof(b), "%.0f",
                          e.peakMacPerSec / 1e12);
            return std::string(b);
        });
    add("Area (mm2 @ 28 nm-equiv)", std::string("< 330"),
        [](const NpuConfig &, const NpuEstimate &e) {
            char b[64];
            std::snprintf(b, sizeof(b), "~%.0f", e.areaMm2At(28.0));
            return std::string(b);
        });

    table.print();
    std::printf("\npaper reference: 52.6 GHz; peaks 3366 / 3366 / 842 /"
                " 842 TMAC/s; areas ~283 / ~285 / ~298 / ~299 mm2.\n");
    return 0;
}
