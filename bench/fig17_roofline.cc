/**
 * @file
 * Regenerates Fig. 17: the Baseline's roofline at a single input
 * batch. For each workload: computational intensity (MAC per mapped
 * weight byte), the roofline-attainable performance, the simulated
 * effective performance, and the implied PE utilization. The paper
 * reports roofline utilization below 2 % and effective performance
 * more than 98 % below even that roofline (~6.45 TMAC/s average
 * against a 3.4 PMAC/s peak).
 */

#include <cstdio>

#include "bench_common.hh"
#include "dnn/analysis.hh"

using namespace supernpu;

int
main()
{
    bench::Pipeline pipe;
    const auto config = estimator::NpuConfig::baseline();
    const auto est = pipe.estimator.estimate(config);
    npusim::NpuSimulator sim(est);

    const double peak = est.peakMacPerSec;
    const double bw = config.memoryBandwidth;

    TextTable table("Fig. 17: Baseline roofline, single batch");
    table.row()
        .cell("workload")
        .cell("intensity (MAC/B)")
        .cell("roofline (TMAC/s)")
        .cell("effective (TMAC/s)")
        .cell("roofline util %")
        .cell("PE util %");

    double total_eff = 0.0;
    for (const auto &net : pipe.workloads) {
        const double intensity = dnn::computationalIntensity(net, 1);
        const double roofline =
            dnn::rooflinePerformance(peak, intensity, bw);
        const auto result = sim.run(net, 1);
        const double effective = result.effectiveMacPerSec();
        total_eff += effective;
        table.row()
            .cell(net.name)
            .cell(intensity, 1)
            .cell(roofline / 1e12, 2)
            .cell(effective / 1e12, 2)
            .cell(100.0 * roofline / peak, 2)
            .cell(100.0 * result.peUtilization(config.peCount()), 3);
    }
    table.print();
    std::printf("\npeak: %.0f TMAC/s; average effective: %.2f TMAC/s"
                " (paper: 3366 TMAC/s peak, ~6.45 TMAC/s effective,"
                " roofline util < 2 %%)\n",
                peak / 1e12,
                total_eff / (double)pipe.workloads.size() / 1e12);
    return 0;
}
