/**
 * @file
 * Hybrid-parallel scaling of ResNet50 across chip budgets: the
 * DP×TP×PP planner (src/sharding) searches every factorization of
 * 1, 2, 4, 8 chips and reports the winning placement's steady
 * throughput, one-batch latency, and collective overhead.
 *
 * Each budget row plans at the single-chip Table II batch; every
 * winning plan's conservation invariants are enforced through
 * obs::auditSharding, and the headline acceptance property — best
 * throughput is monotonically non-decreasing in the chip budget,
 * which must hold because a larger budget's search space contains
 * every smaller budget's factorization — is a hard failure, checked
 * before the takeaway prints. The sweep runs twice on fresh
 * simulation caches and must reproduce every row bit for bit, the
 * same determinism discipline as pipeline_scaling.
 *
 * --smoke shrinks the budget list for CI; --jobs N fans each
 * budget's factorization sweep across a thread pool (byte-identical
 * rows at any value — the rerun check would catch anything less).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/logging.hh"
#include "obs/audit.hh"
#include "obs/ledger.hh"
#include "sharding/planner.hh"

using namespace supernpu;

namespace {

/** Full-precision fingerprint of one budget row. */
void
fingerprintRow(std::ostringstream &out, const sharding::ShardPlan &plan)
{
    out.precision(17);
    out << plan.dataParallel << 'x' << plan.tensorShards << 'x'
        << plan.pipelineStages << ' ' << plan.intervalCycles << ' '
        << plan.latencyCycles << ' ' << plan.bottleneckCycles << ' '
        << plan.fillCycles << ' ' << plan.gatherCycles << ' '
        << plan.tensorCollectiveCycles << ' '
        << plan.tensorCollectiveBytes << ' ' << plan.throughput()
        << '\n';
    for (int s = 0; s < plan.pipelineStages; ++s) {
        const auto &stage = plan.pipeline.stages[s];
        out << stage.firstLayer << '-' << stage.lastLayer << ':'
            << stage.stageCycles << ':'
            << plan.stageOccupancyCycles[(std::size_t)s] << ' ';
    }
    out << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int jobs = 1;
    std::string ledger_file;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--ledger") == 0 && i + 1 < argc)
            ledger_file = argv[i + 1];
    }

    bench::Pipeline pipeline;
    const estimator::NpuConfig config =
        estimator::NpuConfig::superNpu();
    const estimator::NpuEstimate estimate =
        pipeline.estimator.estimate(config);
    const dnn::Network net = dnn::makeResNet50();
    const int batch = npusim::maxBatch(config, estimate, net);
    const std::vector<int> budgets = smoke
                                         ? std::vector<int>{1, 2, 4}
                                         : std::vector<int>{1, 2, 4, 8};

    // Each sweep pass plans on its own fresh cache — the honest mode
    // for a scaling study, and what makes the rerun comparison
    // meaningful rather than a cache replay.
    const auto run_sweep = [&]() {
        std::vector<sharding::ShardPlan> rows;
        npusim::SimCache cache(256);
        sharding::HybridPlanner planner(estimate, {}, &cache);
        for (int budget : budgets) {
            rows.push_back(
                planner
                    .plan(net, budget, batch,
                          sharding::PlanObjective::Throughput, jobs)
                    .best());
        }
        return rows;
    };

    const auto rows = run_sweep();

    std::printf("%s on %s, batch %d, link %.0f GB/s\n\n",
                net.name.c_str(), config.name.c_str(), batch,
                partition::LinkConfig{}.bandwidthGBps);
    TextTable table("shard scaling");
    table.row()
        .cell("chips")
        .cell("dp x tp x pp")
        .cell("inf/s")
        .cell("speedup")
        .cell("latency us")
        .cell("collective cyc");
    obs::RunLedger ledger;
    ledger.table("scaling",
                 {"budget", "dataParallel", "tensorShards",
                  "pipelineStages", "throughput", "speedup",
                  "latencySec", "intervalCycles",
                  "tensorCollectiveCycles", "gatherCycles"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const sharding::ShardPlan &plan = rows[i];
        // Every row must satisfy the sharding conservation laws.
        obs::enforce(obs::auditSharding(plan), "shard_scaling");
        std::string factor = std::to_string(plan.dataParallel);
        factor += " x ";
        factor += std::to_string(plan.tensorShards);
        factor += " x ";
        factor += std::to_string(plan.pipelineStages);
        table.row()
            .cell((long long)budgets[i])
            .cell(factor)
            .cell(plan.throughput(), 0)
            .cell(plan.speedup(), 2)
            .cell(plan.latencySec() * 1e6, 2)
            .cell((unsigned long long)plan.tensorCollectiveCycles);
        ledger.addRow(
            "scaling",
            {obs::Value::integer((std::uint64_t)budgets[i]),
             obs::Value::integer((std::uint64_t)plan.dataParallel),
             obs::Value::integer((std::uint64_t)plan.tensorShards),
             obs::Value::integer((std::uint64_t)plan.pipelineStages),
             obs::Value::real(plan.throughput()),
             obs::Value::real(plan.speedup()),
             obs::Value::real(plan.latencySec()),
             obs::Value::integer(plan.intervalCycles),
             obs::Value::integer(plan.tensorCollectiveCycles),
             obs::Value::integer(plan.gatherCycles)});
    }
    table.print();

    // Acceptance property: a bigger budget's search space contains
    // every smaller budget's factorization, so the best throughput
    // can never regress as chips are added. A violation is a hard
    // failure, not a footnote.
    for (std::size_t i = 1; i < rows.size(); ++i) {
        if (rows[i].throughput() < rows[i - 1].throughput()) {
            fatal("throughput regressed from budget ", budgets[i - 1],
                  " to budget ", budgets[i]);
        }
    }

    // Determinism: a rerun on a fresh cache must reproduce every row
    // bit for bit.
    const auto print_of = [&](const auto &results) {
        std::ostringstream out;
        for (const auto &plan : results)
            fingerprintRow(out, plan);
        return out.str();
    };
    const bool rerun_same = print_of(run_sweep()) == print_of(rows);
    std::printf("\nidentical across reruns: %s\n",
                rerun_same ? "yes" : "NO");

    std::printf("\ntakeaway: the hybrid planner trades the three"
                " parallelism axes off against each other — pipeline"
                " cuts win at small budgets where the all-reduce of"
                " full ofmaps is too dear, while tensor and data"
                " sharding join once the budget outgrows the"
                " network's useful pipeline depth — so the best"
                " placement's throughput grows monotonically with"
                " the chip budget even though no single axis"
                " scales that far alone.\n");

    if (!ledger_file.empty()) {
        ledger.setText("bench", "name", "shard_scaling");
        ledger.setText("bench", "network", net.name);
        ledger.setInt("bench", "batch", (std::uint64_t)batch);
        ledger.setInt("bench", "smoke", smoke ? 1 : 0);
        if (!ledger.write(ledger_file))
            fatal("cannot write ledger '", ledger_file, "'");
        std::printf("wrote ledger to %s\n", ledger_file.c_str());
    }
    return rerun_same ? 0 : 1;
}
