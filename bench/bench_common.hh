/**
 * @file
 * Shared helpers for the per-figure/table benchmark binaries: every
 * binary builds the same evaluation pipeline the paper uses
 * (RSFQ 1.0 um library -> estimator -> cycle simulator -> power) and
 * prints the figure's rows through TextTable.
 */

#ifndef SUPERNPU_BENCH_COMMON_HH
#define SUPERNPU_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "common/table.hh"
#include "dnn/networks.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "npusim/sim.hh"
#include "scalesim/tpu.hh"

namespace supernpu {
namespace bench {

/** The full evaluation pipeline at the paper's process point. */
struct Pipeline
{
    sfq::DeviceConfig device;
    sfq::CellLibrary library;
    estimator::NpuEstimator estimator;
    scalesim::TpuConfig tpuConfig;
    scalesim::TpuSimulator tpu;
    std::vector<dnn::Network> workloads;

    explicit Pipeline(
        sfq::Technology tech = sfq::Technology::RSFQ)
        : device(makeDevice(tech)),
          library(device),
          estimator(library),
          tpu(tpuConfig),
          workloads(dnn::evaluationWorkloads())
    {
    }

    /** Average effective MAC/s of the TPU at Table II batches. */
    double
    tpuAveragePerf()
    {
        double total = 0.0;
        for (const auto &net : workloads) {
            const int batch = npusim::maxBatchUnified(
                tpuConfig.unifiedBufferBytes, net);
            total += tpu.run(net, batch).effectiveMacPerSec();
        }
        return total / (double)workloads.size();
    }

    /**
     * Average effective MAC/s of an SFQ NPU configuration; batch 0
     * means "solve the Table II maximum batch per workload".
     */
    double
    npuAveragePerf(const estimator::NpuConfig &config, int batch = 0)
    {
        const estimator::NpuEstimate est = estimator.estimate(config);
        npusim::NpuSimulator sim(est);
        double total = 0.0;
        for (const auto &net : workloads) {
            const int b = batch > 0
                              ? batch
                              : npusim::maxBatch(config, est, net);
            total += sim.run(net, b).effectiveMacPerSec();
        }
        return total / (double)workloads.size();
    }

  private:
    static sfq::DeviceConfig
    makeDevice(sfq::Technology tech)
    {
        sfq::DeviceConfig dev;
        dev.technology = tech;
        return dev;
    }
};

/** The four Table I SFQ configurations in optimization order. */
inline std::vector<estimator::NpuConfig>
tableOneConfigs()
{
    return {estimator::NpuConfig::baseline(),
            estimator::NpuConfig::bufferOpt(),
            estimator::NpuConfig::resourceOpt(),
            estimator::NpuConfig::superNpu()};
}

} // namespace bench
} // namespace supernpu

#endif // SUPERNPU_BENCH_COMMON_HH
