/**
 * @file
 * Regenerates Fig. 15: the Baseline SFQ NPU's normalized cycle
 * breakdown per CNN workload. The paper shows preparation (buffer
 * fills, intra/inter-buffer moves, weight loads) dominating above
 * 90 % everywhere.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace supernpu;

int
main()
{
    bench::Pipeline pipe;
    const auto config = estimator::NpuConfig::baseline();
    const auto est = pipe.estimator.estimate(config);
    npusim::NpuSimulator sim(est);

    TextTable table("Fig. 15: Baseline cycle breakdown (batch 1)");
    table.row()
        .cell("workload")
        .cell("preparation %")
        .cell("computation %")
        .cell("mem stall %")
        .cell("psum-move %")
        .cell("rewind %")
        .cell("total cycles");

    for (const auto &net : pipe.workloads) {
        const auto result = sim.run(net, 1);
        const double total = (double)result.totalCycles;
        table.row()
            .cell(net.name)
            .cell(100.0 * (double)result.prepCycles / total, 1)
            .cell(100.0 * (double)result.computeCycles / total, 1)
            .cell(100.0 * (double)result.memoryStallCycles / total, 1)
            .cell(100.0 * (double)result.prep.psumMove / total, 1)
            .cell(100.0 * (double)result.prep.ifmapRewind / total, 1)
            .cell((unsigned long long)result.totalCycles);
    }
    table.print();
    std::printf("\npaper reference: preparation dominates (> 90 %%) for"
                " every workload.\n");
    return 0;
}
