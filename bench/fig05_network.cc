/**
 * @file
 * Regenerates Fig. 5: critical-path delay (a) and area (b) of the
 * three on-chip network candidates versus PE-array width. Expected
 * shape: the 2D splitter tree's delay grows linearly with width and
 * exceeds 800 ps at 64; the systolic array is flat and smallest in
 * both metrics; the two trees have similarly large areas.
 */

#include <cstdio>

#include "bench_common.hh"
#include "estimator/network_model.hh"

using namespace supernpu;
using estimator::NetworkDesign;
using estimator::NetworkUnitModel;

int
main()
{
    bench::Pipeline pipe;

    TextTable delay("Fig. 5(a): network critical-path delay (ps)");
    delay.row()
        .cell("PE array width")
        .cell("2D splitter tree")
        .cell("1D splitter tree")
        .cell("2D systolic array");

    TextTable area("Fig. 5(b): network area (mm2, 1.0 um node)");
    area.row()
        .cell("PE array width")
        .cell("2D splitter tree")
        .cell("1D splitter tree")
        .cell("2D systolic array");

    for (int width : {4, 8, 16, 32, 64}) {
        NetworkUnitModel tree2(pipe.library,
                               NetworkDesign::SplitterTree2D, width, 8);
        NetworkUnitModel tree1(pipe.library,
                               NetworkDesign::SplitterTree1D, width, 8);
        NetworkUnitModel systolic(pipe.library,
                                  NetworkDesign::Systolic2D, width, 8);
        delay.row()
            .cell(width)
            .cell(tree2.criticalPathPs(), 1)
            .cell(tree1.criticalPathPs(), 1)
            .cell(systolic.criticalPathPs(), 1);
        area.row()
            .cell(width)
            .cell(tree2.area(), 3)
            .cell(tree1.area(), 3)
            .cell(systolic.area(), 3);
    }

    delay.print();
    std::printf("\n");
    area.print();
    std::printf("\npaper reference: 2D tree exceeds 800 ps at width 64;"
                " systolic flat and smallest in delay and area.\n");
    return 0;
}
