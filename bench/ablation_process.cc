/**
 * @file
 * Ablation: fabrication process scaling (the paper's footnote 2).
 *
 * The evaluation conservatively uses the available AIST 1.0 um
 * process. Gate delays scale roughly linearly with the junction
 * feature size down to ~0.2 um (Kadin et al.), and the area scales
 * quadratically. This bench sweeps the feature size and reports the
 * achievable clock, peak and effective performance, and the
 * 28 nm-equivalent area of the SuperNPU configuration.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/parallel.hh"
#include "power/power.hh"

using namespace supernpu;

namespace {

/** One table row of the feature-size sweep. */
struct Row
{
    double feature = 0.0;
    double clockGhz = 0.0;
    double peakTmacs = 0.0;
    double effTmacs = 0.0;
    double staticW = 0.0;
    double areaMm2 = 0.0;
};

} // namespace

int
main()
{
    const auto config = estimator::NpuConfig::superNpu();
    const auto workloads = dnn::evaluationWorkloads();

    TextTable table("ablation: process feature-size scaling (SuperNPU)");
    table.row()
        .cell("feature (um)")
        .cell("clock (GHz)")
        .cell("peak (TMAC/s)")
        .cell("avg eff (TMAC/s)")
        .cell("RSFQ static (W)")
        .cell("area mm2 (native)");

    // Each node rebuilds the whole pipeline (library -> estimator ->
    // simulator), so the sweep parallelizes over feature sizes and
    // the rows come back in submission order.
    const std::vector<double> features = {1.0, 0.8, 0.5,
                                          0.35, 0.2, 0.1};
    ThreadPool pool;
    const auto rows = pool.parallelMap(
        features.size(), [&](std::size_t i) {
            sfq::DeviceConfig device;
            device.featureSizeUm = features[i];
            sfq::CellLibrary library(device);
            estimator::NpuEstimator npu_estimator(library);
            const auto estimate = npu_estimator.estimate(config);
            npusim::NpuSimulator sim(estimate);

            double perf = 0.0;
            for (const auto &net : workloads) {
                const int batch =
                    npusim::maxBatch(config, estimate, net);
                perf += sim.run(net, batch).effectiveMacPerSec() /
                        (double)workloads.size();
            }
            return Row{features[i],          estimate.frequencyGhz,
                       estimate.peakMacPerSec / 1e12,
                       perf / 1e12,          estimate.staticPowerW,
                       estimate.areaMm2};
        });

    for (const Row &row : rows) {
        table.row()
            .cell(row.feature, 2)
            .cell(row.clockGhz, 1)
            .cell(row.peakTmacs, 0)
            .cell(row.effTmacs, 1)
            .cell(row.staticW, 0)
            .cell(row.areaMm2, 0);
    }
    table.print();
    std::printf("\ntakeaway: frequency scales ~1/feature until the"
                " 0.2 um floor (a >260 GHz clock); the effective"
                " speedup saturates earlier as workloads become"
                " memory-bandwidth bound, and static power does not"
                " improve at all (it is bias-current limited) — the"
                " paper's case for ERSFQ holds at every node.\n");
    return 0;
}
