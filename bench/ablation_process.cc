/**
 * @file
 * Ablation: fabrication process scaling (the paper's footnote 2).
 *
 * The evaluation conservatively uses the available AIST 1.0 um
 * process. Gate delays scale roughly linearly with the junction
 * feature size down to ~0.2 um (Kadin et al.), and the area scales
 * quadratically. This bench sweeps the feature size and reports the
 * achievable clock, peak and effective performance, and the
 * 28 nm-equivalent area of the SuperNPU configuration.
 */

#include <cstdio>

#include "bench_common.hh"
#include "power/power.hh"

using namespace supernpu;

int
main()
{
    const auto config = estimator::NpuConfig::superNpu();
    const auto workloads = dnn::evaluationWorkloads();

    TextTable table("ablation: process feature-size scaling (SuperNPU)");
    table.row()
        .cell("feature (um)")
        .cell("clock (GHz)")
        .cell("peak (TMAC/s)")
        .cell("avg eff (TMAC/s)")
        .cell("RSFQ static (W)")
        .cell("area mm2 (native)");

    for (double feature : {1.0, 0.8, 0.5, 0.35, 0.2, 0.1}) {
        sfq::DeviceConfig device;
        device.featureSizeUm = feature;
        sfq::CellLibrary library(device);
        estimator::NpuEstimator npu_estimator(library);
        const auto estimate = npu_estimator.estimate(config);
        npusim::NpuSimulator sim(estimate);

        double perf = 0.0;
        for (const auto &net : workloads) {
            const int batch =
                npusim::maxBatch(config, estimate, net);
            perf += sim.run(net, batch).effectiveMacPerSec() /
                    (double)workloads.size();
        }

        table.row()
            .cell(feature, 2)
            .cell(estimate.frequencyGhz, 1)
            .cell(estimate.peakMacPerSec / 1e12, 0)
            .cell(perf / 1e12, 1)
            .cell(estimate.staticPowerW, 0)
            .cell(estimate.areaMm2, 0);
    }
    table.print();
    std::printf("\ntakeaway: frequency scales ~1/feature until the"
                " 0.2 um floor (a >260 GHz clock); the effective"
                " speedup saturates earlier as workloads become"
                " memory-bandwidth bound, and static power does not"
                " improve at all (it is bias-current limited) — the"
                " paper's case for ERSFQ holds at every node.\n");
    return 0;
}
