/**
 * @file
 * Extension study: double-buffered weight loading.
 *
 * The paper's weight buffers hold exactly one mapping's weights
 * (64 KB = 256 x 256 bytes on the Baseline; 128 KB = 64 x 256 x 8 on
 * the SuperNPU), so every weight fetch serializes against the array.
 * This study adds a second bank (trivial area: the weight buffer is
 * <0.01 % of on-chip storage) and overlaps the next mapping's DRAM
 * fetch with the current mapping's computation — the classic
 * prefetch the paper leaves on the table.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace supernpu;
using estimator::NpuConfig;

int
main()
{
    bench::Pipeline pipe;

    NpuConfig plain = NpuConfig::superNpu();
    NpuConfig prefetch = NpuConfig::superNpu();
    prefetch.name = "SuperNPU+prefetch";
    prefetch.weightDoubleBuffering = true;
    prefetch.weightBufferBytes *= 2;

    const auto est_plain = pipe.estimator.estimate(plain);
    const auto est_pref = pipe.estimator.estimate(prefetch);
    npusim::NpuSimulator sim_plain(est_plain);
    npusim::NpuSimulator sim_pref(est_pref);

    TextTable table("extension: double-buffered weight loading");
    table.row()
        .cell("workload")
        .cell("TMAC/s (paper design)")
        .cell("TMAC/s (+prefetch)")
        .cell("gain")
        .cell("weight-load share before/after");

    double gain_sum = 0.0;
    for (const auto &net : pipe.workloads) {
        const int batch = npusim::maxBatch(plain, est_plain, net);
        const auto before = sim_plain.run(net, batch);
        const auto after = sim_pref.run(net, batch);
        const double gain = after.effectiveMacPerSec() /
                            before.effectiveMacPerSec();
        gain_sum += gain / (double)pipe.workloads.size();

        char share[64];
        std::snprintf(share, sizeof(share), "%.0f%% -> %.0f%%",
                      100.0 * (double)before.prep.weightLoad /
                          (double)before.totalCycles,
                      100.0 * (double)after.prep.weightLoad /
                          (double)after.totalCycles);
        table.row()
            .cell(net.name)
            .cell(before.effectiveMacPerSec() / 1e12, 1)
            .cell(after.effectiveMacPerSec() / 1e12, 1)
            .cell(gain, 2)
            .cell(share);
    }
    table.print();
    std::printf("\ntakeaway: %.2fx average for one extra 128 KB bank."
                " Conv-heavy networks gain the most (their compute"
                " fully hides the fetch); the FC-heavy ones stay"
                " weight-bandwidth bound — overlap cannot hide a"
                " fetch longer than the computation itself.\n",
                gain_sum);
    return 0;
}
