/**
 * @file
 * Standalone front end over the unified bench harness
 * (src/perf/bench_runner.hh) — the binary CI runs so the perf job
 * does not depend on the full CLI. Same knobs as `supernpu bench`:
 *
 *   harness [--suite smoke|full] [--case NAME]... [--reps N]
 *           [--warmups N] [--jobs N] [--out PATH] [--no-timing]
 *           [--profile] [--baseline PATH] [--threshold PCT]
 *           [--inject-slowdown PCT]
 *
 * Exit status: 0 on success, 1 when a --baseline comparison finds a
 * regression, 2 on usage errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "perf/bench_runner.hh"

using namespace supernpu;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: harness [--suite smoke|full] [--case NAME]...\n"
        "               [--reps N] [--warmups N] [--jobs N]\n"
        "               [--out PATH] [--no-timing] [--profile]\n"
        "               [--baseline PATH] [--threshold PCT]\n"
        "               [--inject-slowdown PCT]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions options;
    std::string out_path;
    std::string baseline_path;
    double threshold_pct = 10.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("option '", arg, "' needs a value");
            return argv[++i];
        };
        if (arg == "--suite") {
            options.suite = next();
        } else if (arg == "--case") {
            options.only.push_back(next());
        } else if (arg == "--reps") {
            options.repetitions = std::stoi(next());
        } else if (arg == "--warmups") {
            options.warmups = std::stoi(next());
        } else if (arg == "--jobs") {
            options.jobs = std::stoi(next());
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--no-timing") {
            options.includeTiming = false;
        } else if (arg == "--profile") {
            options.profile = true;
        } else if (arg == "--baseline") {
            baseline_path = next();
        } else if (arg == "--threshold") {
            threshold_pct = std::stod(next());
        } else if (arg == "--inject-slowdown") {
            options.injectSlowdownPct = std::stod(next());
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            return usage();
        }
    }

    const bench::BenchReport report = bench::runSuite(options);
    for (const auto &c : report.cases) {
        std::printf("%-22s work %8llu  median %9.2f ms  %12.1f %s\n",
                    c.name.c_str(), (unsigned long long)c.work,
                    c.medianWallSec * 1e3, c.throughput,
                    c.unit.c_str());
    }

    if (out_path.empty())
        out_path = bench::defaultOutputPath(options.suite);
    if (!bench::writeBenchJson(report, options.includeTiming,
                               out_path))
        fatal("cannot write '", out_path, "'");
    std::printf("wrote %s\n", out_path.c_str());

    if (baseline_path.empty())
        return 0;
    std::ifstream file(baseline_path);
    if (!file)
        fatal("cannot open baseline '", baseline_path, "'");
    std::ostringstream text;
    text << file.rdbuf();
    const bench::CompareOutcome outcome = bench::compareToBaseline(
        report, text.str(), threshold_pct);
    if (!outcome.error.empty())
        fatal("baseline comparison failed: ", outcome.error);
    for (const auto &delta : outcome.deltas) {
        if (!delta.comparable) {
            std::printf("%-22s skipped: %s\n", delta.name.c_str(),
                        delta.note.c_str());
        } else if (delta.baselineThroughput > 0.0) {
            std::printf("%-22s %+.1f%% vs baseline%s\n",
                        delta.name.c_str(), -delta.slowdownPct,
                        delta.regressed ? "  REGRESSED" : "");
        } else {
            std::printf("%-22s %s\n", delta.name.c_str(),
                        delta.note.c_str());
        }
    }
    if (!outcome.ok) {
        std::fprintf(stderr,
                     "harness: regression beyond %.1f%% threshold\n",
                     threshold_pct);
        return 1;
    }
    std::printf("baseline check passed (threshold %.1f%%)\n",
                threshold_pct);
    return 0;
}
