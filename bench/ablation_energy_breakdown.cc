/**
 * @file
 * Ablation: where the ERSFQ-SuperNPU's 1.9 W actually goes. Breaks
 * the dynamic power into the per-unit components (MAC datapaths,
 * shift-register chunk activity, DAU forwarding, systolic edge
 * network) for each workload — the power-side companion to the
 * Fig. 15 cycle breakdown.
 */

#include <cstdio>

#include "bench_common.hh"
#include "power/power.hh"

using namespace supernpu;

int
main()
{
    bench::Pipeline pipe(sfq::Technology::ERSFQ);
    const auto config = estimator::NpuConfig::superNpu();
    const auto est = pipe.estimator.estimate(config);
    npusim::NpuSimulator sim(est);

    TextTable table("ERSFQ-SuperNPU dynamic power breakdown (W)");
    table.row()
        .cell("workload")
        .cell("total")
        .cell("PE MACs")
        .cell("buffers")
        .cell("DAU")
        .cell("network")
        .cell("PE share %");

    power::PowerReport average;
    for (const auto &net : pipe.workloads) {
        const int batch = npusim::maxBatch(config, est, net);
        const auto run = sim.run(net, batch);
        const auto report = power::analyze(est, run);
        average.dynamicW +=
            report.dynamicW / (double)pipe.workloads.size();
        average.dynamicPeW +=
            report.dynamicPeW / (double)pipe.workloads.size();
        table.row()
            .cell(net.name)
            .cell(report.dynamicW, 3)
            .cell(report.dynamicPeW, 3)
            .cell(report.dynamicBufferW, 3)
            .cell(report.dynamicDauW, 3)
            .cell(report.dynamicNwW, 3)
            .cell(100.0 * report.dynamicPeW / report.dynamicW, 1);
    }
    table.print();
    std::printf("\ntakeaway: average %.2f W, %.0f%% of it in the MAC"
                " datapaths — in an ERSFQ chip with zero static power,"
                " energy goes almost entirely where the arithmetic"
                " happens, the property behind Table III's 490x.\n",
                average.dynamicW,
                100.0 * average.dynamicPeW / average.dynamicW);
    return 0;
}
