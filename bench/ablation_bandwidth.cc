/**
 * @file
 * Ablation: off-chip memory bandwidth sensitivity.
 *
 * The evaluation pins the HBM-class 300 GB/s of the TPUv2 board.
 * Because the SFQ NPU clocks 75x faster than the CMOS comparator,
 * its compute-to-bandwidth ratio is extreme: this bench sweeps the
 * DRAM bandwidth and shows where each design stops being memory
 * bound (the Baseline barely cares — it is buffer-movement bound —
 * while the SuperNPU keeps scaling well past 300 GB/s).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/parallel.hh"

using namespace supernpu;
using estimator::NpuConfig;

int
main()
{
    bench::Pipeline pipe;

    TextTable table(
        "ablation: DRAM bandwidth sweep (avg effective TMAC/s)");
    table.row()
        .cell("bandwidth (GB/s)")
        .cell("Baseline")
        .cell("SuperNPU")
        .cell("SuperNPU vs 300GB/s");

    const std::vector<double> sweep = {75.0,  150.0,  300.0,
                                       600.0, 1200.0, 2400.0};

    // Each (bandwidth, design) point is an independent simulation;
    // fan the 12 points across the machine. parallelMap returns in
    // submission order, so the table is identical at any job count.
    ThreadPool pool;
    const auto perf = pool.parallelMap(
        sweep.size() * 2, [&](std::size_t i) {
            NpuConfig config = (i % 2 == 0) ? NpuConfig::baseline()
                                            : NpuConfig::superNpu();
            config.memoryBandwidth = sweep[i / 2] * 1e9;
            const auto estimate = pipe.estimator.estimate(config);
            npusim::NpuSimulator sim(estimate);
            double tmacs = 0.0;
            for (const auto &net : pipe.workloads) {
                const int batch =
                    npusim::maxBatch(config, estimate, net);
                tmacs +=
                    sim.run(net, batch).effectiveMacPerSec() / 1e12 /
                    (double)pipe.workloads.size();
            }
            return tmacs;
        });
    std::vector<double> base_perf, super_perf;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        base_perf.push_back(perf[2 * i]);
        super_perf.push_back(perf[2 * i + 1]);
    }

    const double super_at_300 = super_perf[2];
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        table.row()
            .cell(sweep[i], 0)
            .cell(base_perf[i], 2)
            .cell(super_perf[i], 1)
            .cell(super_perf[i] / super_at_300, 2);
    }
    table.print();
    std::printf("\ntakeaway: the Baseline is bound by on-chip shifting,"
                " not DRAM; the SuperNPU still gains past the paper's"
                " 300 GB/s operating point, which is why its weight-"
                "register and batching optimizations (raising MACs per"
                " fetched byte) matter so much.\n");
    return 0;
}
