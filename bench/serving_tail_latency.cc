/**
 * @file
 * Serving tail latency vs offered load — the paper's Table II batch
 * and Fig. 23 throughput numbers turned into the curve a serving
 * operator actually reads: p50/p99/p99.9 latency as Poisson load
 * approaches chip capacity, for one die and a four-die cryostat.
 *
 * The hockey stick lands where queueing theory says it must: near
 * the full-batch capacity (maxBatch / batchSeconds(maxBatch)) the
 * queue grows without bound and the tail explodes, while the
 * dynamic-batching timeout keeps the low-load latency floor at
 * (timeout + single-batch service) instead of waiting forever for a
 * full batch.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "dnn/networks.hh"
#include "estimator/npu_estimator.hh"
#include "npusim/batch.hh"
#include "obs/audit.hh"
#include "obs/ledger.hh"
#include "serving/simulator.hh"

using namespace supernpu;

namespace {

serving::ServingReport
runPoint(const serving::BatchServiceModel &service, int chips,
         int max_batch, double rps)
{
    serving::ServingConfig config;
    config.arrival.kind = serving::ArrivalKind::OpenPoisson;
    config.arrival.ratePerSec = rps;
    config.batching.policy = serving::BatchPolicy::DynamicTimeout;
    config.batching.maxBatch = max_batch;
    config.batching.timeoutSec = 100e-6;
    config.dispatch = serving::DispatchPolicy::JoinShortestQueue;
    config.chips = chips;
    config.requests = 30000;
    serving::ServingSimulator sim(service, config);
    return sim.run();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string ledger_file;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--ledger") == 0)
            ledger_file = argv[i + 1];
    }

    const dnn::Network net = dnn::makeResNet50();

    sfq::DeviceConfig device;
    device.technology = sfq::Technology::ERSFQ;
    sfq::CellLibrary library(device);
    estimator::NpuEstimator estimator(library);
    const auto config = estimator::NpuConfig::superNpu();
    const auto estimate = estimator.estimate(config);
    const int max_batch = npusim::maxBatch(config, estimate, net);
    serving::BatchServiceModel service(estimate, net);
    const double capacity = service.peakRps(max_batch);

    obs::RunLedger ledger;
    ledger.table("points", {"chips", "loadFrac", "offeredRps",
                            "throughputRps", "utilization",
                            "meanBatch", "p50Sec", "p99Sec",
                            "p999Sec"});

    for (int chips : {1, 4}) {
        TextTable table(
            chips == 1
                ? "ResNet-50 on one SuperNPU die (Poisson, dynamic"
                  " batching, 100 us timeout)"
                : "ResNet-50 on four SuperNPU dies (JSQ dispatch)");
        table.row()
            .cell("load (frac of capacity)")
            .cell("offered req/s")
            .cell("mean batch")
            .cell("util %")
            .cell("p50 ms")
            .cell("p99 ms")
            .cell("p99.9 ms");
        for (double frac : {0.1, 0.3, 0.5, 0.7, 0.85, 0.95}) {
            const double rps = frac * capacity * (double)chips;
            const auto r = runPoint(service, chips, max_batch, rps);
            // Benches run under ctest: conservation always holds.
            obs::enforce(obs::auditServing(r), "serving_tail_latency");
            ledger.addRow("points",
                          {obs::Value::integer((std::uint64_t)chips),
                           obs::Value::real(frac),
                           obs::Value::real(rps),
                           obs::Value::real(r.throughputRps),
                           obs::Value::real(r.utilization),
                           obs::Value::real(r.meanBatch),
                           obs::Value::real(r.latencyP50),
                           obs::Value::real(r.latencyP99),
                           obs::Value::real(r.latencyP999)});
            table.row()
                .cell(frac, 2)
                .cell(rps, 0)
                .cell(r.meanBatch, 1)
                .cell(r.utilization * 100.0, 1)
                .cell(r.latencyP50 * 1e3, 3)
                .cell(r.latencyP99 * 1e3, 3)
                .cell(r.latencyP999 * 1e3, 3);
        }
        table.print();
        std::printf("\n");
    }

    std::printf("full-batch capacity: %.0f req/s per die (batch %d"
                " at %.2f ms per batch)\n",
                capacity, max_batch,
                service.batchSeconds(max_batch) * 1e3);
    std::printf("takeaway: one SFQ die rides sub-millisecond p99 to"
                " ~85%% of its %.0fk req/s capacity; four dies behind"
                " JSQ scale the knee linearly while the low-load"
                " latency floor stays at timeout + single-inference"
                " service.\n",
                capacity / 1e3);

    if (!ledger_file.empty()) {
        ledger.setText("bench", "name", "serving_tail_latency");
        ledger.setReal("bench", "capacityRpsPerDie", capacity);
        ledger.setInt("bench", "maxBatch", (std::uint64_t)max_batch);
        if (!ledger.write(ledger_file))
            fatal("cannot write ledger '", ledger_file, "'");
        std::printf("wrote ledger to %s\n", ledger_file.c_str());
    }
    return 0;
}
