/**
 * @file
 * Regenerates Fig. 13: the SFQ-NPU estimator's model outputs against
 * the physical references (fabricated 4-bit MAC die, post-layout
 * characterizations of the SRmem, NW unit, and 2x2 NPU). The paper
 * reports average errors of 5.6 / 1.2 / 1.3 % (frequency / power /
 * area) at the unit level and 4.7 / 2.3 / 9.5 % for the NPU.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hh"
#include "estimator/validation.hh"

using namespace supernpu;

int
main()
{
    bench::Pipeline pipe;
    const auto entries = estimator::validationReport(pipe.library);

    TextTable table("Fig. 13: model validation");
    table.row()
        .cell("unit")
        .cell("metric")
        .cell("model")
        .cell("reference")
        .cell("error %");
    for (const auto &e : entries) {
        table.row()
            .cell(e.unit)
            .cell(e.metric)
            .cell(e.modelValue, 3)
            .cell(e.referenceValue, 3)
            .cell(e.errorPercent(), 1);
    }
    table.print();

    TextTable summary("mean absolute error");
    summary.row().cell("level").cell("frequency").cell("power").cell(
        "area");
    summary.row()
        .cell("unit level")
        .cell(estimator::meanAbsErrorPercent(entries, "frequency",
                                             false), 1)
        .cell(estimator::meanAbsErrorPercent(entries, "power", false), 1)
        .cell(estimator::meanAbsErrorPercent(entries, "area", false), 1);
    summary.row()
        .cell("NPU (2x2)")
        .cell(estimator::meanAbsErrorPercent(entries, "frequency", true),
              1)
        .cell(estimator::meanAbsErrorPercent(entries, "power", true), 1)
        .cell(estimator::meanAbsErrorPercent(entries, "area", true), 1);
    std::printf("\n");
    summary.print();
    std::printf("\npaper reference: 5.6 / 1.2 / 1.3 %% unit level;"
                " 4.7 / 2.3 / 9.5 %% NPU level.\n");
    return 0;
}
