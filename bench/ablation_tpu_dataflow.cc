/**
 * @file
 * Ablation: the comparator's dataflow. SCALE-Sim evaluates systolic
 * arrays under weight-stationary and output-stationary mappings;
 * the TPU (and hence the paper's comparator) is WS. This bench runs
 * the six workloads under both, showing why: OS re-streams the
 * weights once per output tile, turning every CNN layer into a
 * weight-bandwidth problem.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace supernpu;

int
main()
{
    scalesim::TpuConfig ws_config;
    scalesim::TpuConfig os_config;
    os_config.dataflow = scalesim::TpuDataflow::OutputStationary;
    scalesim::TpuSimulator ws(ws_config);
    scalesim::TpuSimulator os(os_config);

    TextTable table("ablation: comparator dataflow (TMAC/s)");
    table.row()
        .cell("workload")
        .cell("batch")
        .cell("weight-stationary")
        .cell("output-stationary")
        .cell("WS advantage")
        .cell("OS weight traffic (x)");

    double advantage = 0.0;
    const auto workloads = dnn::evaluationWorkloads();
    for (const auto &net : workloads) {
        const int batch = npusim::maxBatchUnified(
            ws_config.unifiedBufferBytes, net);
        const auto ws_run = ws.run(net, batch);
        const auto os_run = os.run(net, batch);
        const double ratio = ws_run.effectiveMacPerSec() /
                             os_run.effectiveMacPerSec();
        advantage += ratio / (double)workloads.size();
        table.row()
            .cell(net.name)
            .cell(batch)
            .cell(ws_run.effectiveMacPerSec() / 1e12, 2)
            .cell(os_run.effectiveMacPerSec() / 1e12, 2)
            .cell(ratio, 2)
            .cell((double)os_run.dramBytes /
                      (double)ws_run.dramBytes, 1);
    }
    table.print();
    std::printf("\ntakeaway: weight-stationary wins %.1fx on average"
                " for batched CNN inference — the reuse structure the"
                " paper's (and the TPU's) dataflow choice exploits."
                " The SFQ twist: WS is also the only dataflow without"
                " a PE feedback loop (see ablation_clocking).\n",
                advantage);
    return 0;
}
