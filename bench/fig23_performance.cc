/**
 * @file
 * Regenerates Fig. 23, the paper's headline evaluation: per-workload
 * throughput of the four SFQ NPU design points normalized to the
 * TPU-class comparator, each at its Table II maximum batch.
 * Paper averages: Baseline 0.4x, Buffer opt. 7.7x, Resource opt.
 * 17.3x, SuperNPU 23x (MobileNet peaking around 42x).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace supernpu;

int
main()
{
    bench::Pipeline pipe;

    TextTable table("Fig. 23: speed-up over the TPU comparator");
    table.row()
        .cell("workload")
        .cell("TPU (TMAC/s)")
        .cell("Baseline")
        .cell("Buffer opt.")
        .cell("Resource opt.")
        .cell("SuperNPU");

    const auto configs = bench::tableOneConfigs();
    std::vector<double> average(configs.size(), 0.0);

    for (const auto &net : pipe.workloads) {
        const int tpu_batch = npusim::maxBatchUnified(
            pipe.tpuConfig.unifiedBufferBytes, net);
        const double tpu_perf =
            pipe.tpu.run(net, tpu_batch).effectiveMacPerSec();

        auto &row = table.row();
        row.cell(net.name).cell(tpu_perf / 1e12, 2);
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const auto est = pipe.estimator.estimate(configs[i]);
            npusim::NpuSimulator sim(est);
            const int batch =
                npusim::maxBatch(configs[i], est, net);
            const double speedup =
                sim.run(net, batch).effectiveMacPerSec() / tpu_perf;
            average[i] += speedup / (double)pipe.workloads.size();
            row.cell(speedup, 2);
        }
    }

    auto &avg_row = table.row();
    avg_row.cell("AVERAGE").cell("");
    for (double a : average)
        avg_row.cell(a, 2);
    table.print();

    std::printf("\npaper reference: averages 0.4x / 7.7x / 17.3x / 23x;"
                " MobileNet is the largest column (~42x);"
                " every workload gains >10x on SuperNPU.\n");
    return 0;
}
