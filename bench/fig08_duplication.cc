/**
 * @file
 * Regenerates Fig. 8: the fraction of duplicated ifmap pixels a
 * naive per-PE-row buffering scheme stores, for AlexNet, ResNet50,
 * and VGG16 (the paper reports > 90 % duplication — the motivation
 * for the data alignment unit).
 */

#include <cstdio>

#include "bench_common.hh"
#include "dnn/analysis.hh"

using namespace supernpu;

int
main()
{
    TextTable table("Fig. 8: ifmap pixel breakdown (naive buffering)");
    table.row()
        .cell("network")
        .cell("unique %")
        .cell("duplicated %")
        .cell("dup % (spatial convs)");

    for (const auto &net : dnn::evaluationWorkloads()) {
        if (net.name != "AlexNet" && net.name != "ResNet50" &&
            net.name != "VGG16")
            continue;
        const double all = dnn::networkDuplicatedRatio(net);
        const double spatial =
            dnn::networkDuplicatedRatio(net, /*spatial_only=*/true);
        table.row()
            .cell(net.name)
            .cell(100.0 * (1.0 - all), 1)
            .cell(100.0 * all, 1)
            .cell(100.0 * spatial, 1);
    }
    table.print();
    std::printf("\npaper reference: duplicated pixels exceed 90%% of the"
                " naive storage for the weight-sharing (spatial) conv"
                " layers of all three networks.\n");

    // Per-layer detail for VGG16 (every layer is a 3x3 conv: 8/9).
    TextTable detail("VGG16 per-layer duplication");
    detail.row().cell("layer").cell("unique px").cell("naive px").cell(
        "dup %");
    const dnn::Network vgg = dnn::makeVgg16();
    for (const auto &layer : vgg.layers) {
        if (layer.kind == dnn::LayerKind::FullyConnected)
            continue;
        const auto stats = dnn::layerDuplication(layer);
        detail.row()
            .cell(layer.name)
            .cell((unsigned long long)stats.uniquePixels)
            .cell((unsigned long long)stats.naivePixels)
            .cell(100.0 * stats.duplicatedRatio(), 1);
    }
    std::printf("\n");
    detail.print();
    return 0;
}
